"""Tests for the serving engine: scheduling policy, degraded mode, traffic.

The scheduling-policy tests drive :meth:`ServingEngine.poll` directly under a
manual clock (no pump thread, no subprocesses) so dispatch decisions are
deterministic; the worker tests spawn real worker processes and exercise the
death -> degraded -> recovery path; the equivalence tests assert the
acceptance criterion — served outputs bit-equal to the serial per-image loop
on mixed-shape fp32 + INT12 traffic, including through a forced worker kill.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.engine import (
    ARRIVAL_PROCESSES,
    DeadlineExceeded,
    ModelBank,
    ModelBankSpec,
    PoisonRequestError,
    QueueFullError,
    ServingConfig,
    ServingEngine,
    WorkItem,
    generate_traffic,
    replay_traffic,
    serial_reference_outputs,
)
from repro.engine.serving import _PipeSendTimeout, _send_with_deadline
from repro.utils.shapes import LevelShape

SHAPES_A = (LevelShape(8, 12), LevelShape(4, 6))
SHAPES_B = (LevelShape(6, 8), LevelShape(3, 4))
D_MODEL = 32


def _spec() -> ModelBankSpec:
    """A tiny two-class bank: unquantized + INT12 with query pruning."""
    return ModelBankSpec(
        num_layers=2,
        d_model=D_MODEL,
        num_heads=4,
        num_levels=2,
        num_points=2,
        ffn_dim=64,
        rng_seed=0,
        classes=(
            ("fp32", DEFAConfig(quant_bits=None)),
            ("int12", DEFAConfig(quant_bits=12, enable_query_pruning=True)),
        ),
    )


def _events(n: int = 24, seed: int = 3):
    return generate_traffic(
        n,
        mean_rate_rps=2000.0,
        d_model=D_MODEL,
        shape_mix=((SHAPES_A, 1.0), (SHAPES_B, 1.0)),
        class_mix=(("fp32", 1.0), ("int12", 1.0)),
        process="uniform",
        seed=seed,
    )


def _item(item_id, shapes, seed):
    rng = np.random.default_rng(seed)
    n_in = sum(s.num_pixels for s in shapes)
    return WorkItem(
        item_id=item_id,
        features=rng.standard_normal((n_in, D_MODEL)).astype(np.float32),
        spatial_shapes=shapes,
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _recording_bank(calls: list):
    """An identity bank that records (batch size, shape key) per forward."""

    def forward(batch, shapes):
        calls.append((batch.shape[0], tuple(s.as_tuple() for s in shapes)))
        return batch.copy()

    return {"default": forward}


class TestServingConfig:
    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            ServingConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ServingConfig(max_wait_s=-1.0)
        with pytest.raises(ValueError):
            ServingConfig(num_workers=-1)
        with pytest.raises(ValueError):
            ServingConfig(restart_backoff_s=-0.1)


class TestSchedulingPolicy:
    """Manual-poll tests: no pump thread, no workers, deterministic clock."""

    def _engine(self, calls, **config_kwargs):
        config = ServingConfig(num_workers=0, **config_kwargs)
        return ServingEngine(
            lambda: _recording_bank(calls), config, clock=FakeClock()
        )

    def test_shape_grouped_dispatch_order(self):
        """Items batch by shape signature in submission order: A[0,2] fills
        first, then B[1,4], and the A remainder only flushes explicitly."""
        calls: list = []
        engine = self._engine(calls, max_batch_size=2, max_wait_s=100.0)
        items = [
            _item(0, SHAPES_A, 0),
            _item(1, SHAPES_B, 1),
            _item(2, SHAPES_A, 2),
            _item(3, SHAPES_A, 3),
            _item(4, SHAPES_B, 4),
        ]
        futures = [engine.submit(item) for item in items]
        engine.poll()
        key_a = items[0].shape_key
        key_b = items[1].shape_key
        assert calls == [(2, key_a), (2, key_b)]
        records = engine.stats.batches
        assert [(r.shape_key, r.size, r.reason) for r in records] == [
            (key_a, 2, "full"),
            (key_b, 2, "full"),
        ]
        assert not futures[3].done()  # the A remainder is below max_batch_size
        engine.flush()
        assert [(r.shape_key, r.size, r.reason) for r in engine.stats.batches[2:]] == [
            (key_a, 1, "flush")
        ]
        # Identity forward: every future resolves to its own features.
        for item, future in zip(items, futures):
            np.testing.assert_array_equal(future.result(timeout=1.0), item.features)

    def test_max_wait_flushes_partial_group(self):
        calls: list = []
        engine = self._engine(calls, max_batch_size=8, max_wait_s=1.0)
        clock = engine._clock
        future = engine.submit(_item(0, SHAPES_A, 0))
        engine.poll()
        assert not calls and not future.done()  # group neither full nor due
        clock.advance(1.0)
        engine.poll()
        assert [r.reason for r in engine.stats.batches] == ["wait"]
        assert future.done()

    def test_wait_clock_starts_at_oldest_request(self):
        calls: list = []
        engine = self._engine(calls, max_batch_size=8, max_wait_s=1.0)
        clock = engine._clock
        engine.submit(_item(0, SHAPES_A, 0))
        clock.advance(0.6)
        engine.submit(_item(1, SHAPES_A, 1))
        engine.poll()
        assert not calls
        clock.advance(0.4)  # oldest request has now waited the full max_wait
        engine.poll()
        assert [r.size for r in engine.stats.batches] == [2]

    def test_unknown_request_class_fails_future(self):
        engine = self._engine([], max_batch_size=2)
        future = engine.submit(_item(0, SHAPES_A, 0), request_class="nope")
        engine.flush()
        with pytest.raises(KeyError, match="nope"):
            future.result(timeout=1.0)

    def test_submit_after_shutdown_raises(self):
        engine = self._engine([])
        engine.shutdown()
        with pytest.raises(RuntimeError):
            engine.submit(_item(0, SHAPES_A, 0))

    def test_shutdown_fails_unserved_futures(self):
        engine = self._engine([], max_batch_size=8, max_wait_s=100.0)
        future = engine.submit(_item(0, SHAPES_A, 0))
        engine.poll()  # not due: stays pending
        engine.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            future.result(timeout=1.0)


class TestServedEquivalence:
    """Acceptance criterion: served outputs bit-equal to the serial loop."""

    def test_inproc_bit_equal_fp32_and_int12(self):
        spec = _spec()
        events = _events(20)
        assert {e.request_class for e in events} == {"fp32", "int12"}
        reference = serial_reference_outputs(spec.build(), events)
        engine = ServingEngine(
            spec.build, ServingConfig(num_workers=0, max_batch_size=4)
        ).start()
        try:
            result = replay_traffic(engine, events, speed=0.0)
        finally:
            engine.shutdown()
        for served, expected in zip(result.outputs, reference):
            np.testing.assert_array_equal(served, expected)
        assert engine.stats.num_completed == len(events)
        assert engine.stats.degraded_batches == engine.stats.num_batches

    def test_worker_bit_equal_and_all_primary(self):
        spec = _spec()
        events = _events(16, seed=5)
        reference = serial_reference_outputs(spec.build(), events)
        engine = ServingEngine(
            spec.build, ServingConfig(num_workers=1, max_batch_size=4)
        ).start()
        try:
            result = replay_traffic(engine, events, speed=0.0)
        finally:
            engine.shutdown()
        for served, expected in zip(result.outputs, reference):
            np.testing.assert_array_equal(served, expected)
        assert engine.stats.worker_deaths == 0
        assert engine.stats.degraded_batches == 0
        assert engine.stats.primary_batches == engine.stats.num_batches > 0

    def test_bit_equal_through_worker_kill(self):
        """The full fault path: kill the only worker mid-stream; the stranded
        and re-enqueued requests serve degraded, later ones may serve from
        the restarted worker — all bit-equal to the serial loop."""
        spec = _spec()
        events = _events(24, seed=9)
        reference = serial_reference_outputs(spec.build(), events)
        engine = ServingEngine(
            spec.build,
            ServingConfig(num_workers=1, max_batch_size=4, restart_backoff_s=0.05),
        ).start()
        killed: list[int] = []

        def on_submit(i: int) -> None:
            if i == 8 and not killed:
                killed.append(i)
                engine.kill_worker(0)

        try:
            result = replay_traffic(engine, events, speed=0.0, on_submit=on_submit)
        finally:
            engine.shutdown()
        assert engine.stats.worker_deaths >= 1
        for served, expected in zip(result.outputs, reference):
            np.testing.assert_array_equal(served, expected)


class TestWorkerLifecycle:
    def test_death_degraded_then_recovery(self):
        spec = _spec()
        engine = ServingEngine(
            spec.build,
            # Long backoff: everything submitted right after the kill is
            # guaranteed to serve via the degraded in-process path.
            ServingConfig(num_workers=1, max_batch_size=4, restart_backoff_s=1.0),
        ).start()
        try:
            first = [
                engine.submit(_item(i, SHAPES_A, i), request_class="fp32")
                for i in range(4)
            ]
            engine.flush()
            assert engine.mode == "primary"
            assert engine.stats.primary_batches > 0

            assert engine.kill_worker(0) is True
            # Wait for the pump to put the death on the books first: requests
            # submitted *after* a detected death serve via the degraded
            # in-process path, while requests in flight *during* a death are
            # suspects that wait for a worker (PR 10 poison safety).
            deadline = time.monotonic() + 30.0
            while engine.stats.worker_deaths == 0:
                if time.monotonic() > deadline:
                    pytest.fail("worker death was not detected in time")
                time.sleep(0.005)
            second = [
                engine.submit(_item(10 + i, SHAPES_A, 10 + i), request_class="fp32")
                for i in range(4)
            ]
            engine.flush()
            assert engine.stats.worker_deaths == 1
            assert engine.stats.degraded_batches > 0
            assert engine.mode == "degraded"
            assert ("degraded" in [m for _, m in engine.stats.mode_transitions])

            # The pump thread restarts the worker once the backoff expires.
            deadline = time.monotonic() + 30.0
            while engine.mode != "primary":
                if time.monotonic() > deadline:
                    pytest.fail("worker did not restart in time")
                time.sleep(0.02)
            assert engine.stats.worker_restarts >= 1

            # Wait for ready, then confirm post-recovery batches use the worker.
            deadline = time.monotonic() + 30.0
            while not any(h.ready for h in engine._workers):
                if time.monotonic() > deadline:
                    pytest.fail("restarted worker did not report ready in time")
                time.sleep(0.02)
            third = [
                engine.submit(_item(20 + i, SHAPES_A, 20 + i), request_class="fp32")
                for i in range(4)
            ]
            engine.flush()
            assert engine.stats.batches[-1].path == "worker"
            for future in first + second + third:
                assert future.result(timeout=1.0).shape == (
                    sum(s.num_pixels for s in SHAPES_A),
                    D_MODEL,
                )
        finally:
            engine.shutdown()

    def test_max_restarts_retires_worker(self):
        calls: list = []
        clock = FakeClock()
        engine = ServingEngine(
            lambda: _recording_bank(calls),
            ServingConfig(
                num_workers=1, max_batch_size=2, restart_backoff_s=0.01, max_restarts=0
            ),
            clock=clock,
        )
        engine.start()
        try:
            engine.kill_worker(0)
            deadline = time.monotonic() + 30.0
            while engine.stats.worker_deaths == 0:
                if time.monotonic() > deadline:
                    pytest.fail("kill was not detected in time")
                time.sleep(0.02)
            clock.advance(10.0)
            future = engine.submit(_item(0, SHAPES_A, 0))
            engine.flush()
            # Retired slot: never respawned, everything serves degraded.
            assert engine.stats.worker_restarts == 0
            assert engine.mode == "degraded"
            assert future.result(timeout=1.0) is not None
        finally:
            engine.shutdown()

    def test_worker_plan_stats_stay_warm_across_requests(self):
        """The worker's runner keeps its ExecutionPlan arenas across batches:
        plan hits must climb between two same-shape flush rounds (the PR 5
        zero-allocation steady state surviving across requests)."""
        spec = ModelBankSpec(
            num_layers=2,
            d_model=D_MODEL,
            num_heads=4,
            num_levels=2,
            num_points=2,
            ffn_dim=64,
            rng_seed=0,
            # Pin the fused backend so the plan arena is exercised even when
            # the process default backend is "reference" (CI matrix leg).
            classes=(("fp32", DEFAConfig(quant_bits=None, kernel_backend="fused")),),
        )
        engine = ServingEngine(
            spec.build,
            # A long max_wait keeps the pump thread from flushing a partial
            # group mid-submission: each round must dispatch as exactly one
            # batch of 4, so both rounds hit the same (shape, batch) plan and
            # the arena footprint stays constant.
            ServingConfig(num_workers=1, max_batch_size=4, max_wait_s=30.0),
        ).start()
        try:
            for i in range(4):
                engine.submit(_item(i, SHAPES_A, i), request_class="fp32")
            engine.flush()
            first = engine.worker_stats()[0]
            assert first is not None and first["fp32"]["plans"] >= 1
            # PR 9: the worker reports which dispatch profile it serves with.
            assert first["fp32"]["profile"] == "reference"
            for i in range(4, 8):
                engine.submit(_item(i, SHAPES_A, i), request_class="fp32")
            engine.flush()
            second = engine.worker_stats()[0]
            assert second["fp32"]["hits"] > first["fp32"]["hits"]
            assert second["fp32"]["bytes"] == first["fp32"]["bytes"]
        finally:
            engine.shutdown()

    def test_worker_forward_error_fails_future_but_worker_survives(self):
        spec = _spec()
        engine = ServingEngine(
            spec.build, ServingConfig(num_workers=1, max_batch_size=2)
        ).start()
        try:
            bad = engine.submit(_item(0, SHAPES_A, 0), request_class="nope")
            engine.flush()
            with pytest.raises(RuntimeError, match="nope"):
                bad.result(timeout=1.0)
            # The worker survived the forward error and keeps serving.
            good = engine.submit(_item(1, SHAPES_A, 1), request_class="fp32")
            engine.flush()
            assert good.result(timeout=1.0) is not None
            assert engine.stats.worker_deaths == 0
            assert engine.mode == "primary"
        finally:
            engine.shutdown()


class TestModelBank:
    def test_coerce_accepts_plain_dict(self):
        bank = ModelBank.coerce({"default": lambda batch, shapes: batch})
        assert bank.request_classes == ("default",)
        assert ModelBank.coerce(bank) is bank

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            ModelBank({})

    def test_unknown_class_raises_keyerror(self):
        bank = ModelBank({"default": lambda batch, shapes: batch})
        with pytest.raises(KeyError, match="nope"):
            bank.forward("nope", np.zeros((1, 2, 3), dtype=np.float32), [])


class TestTrafficGenerator:
    def test_deterministic_per_seed(self):
        a = _events(12, seed=7)
        b = _events(12, seed=7)
        c = _events(12, seed=8)
        assert [e.arrival_s for e in a] == [e.arrival_s for e in b]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.item.features, y.item.features)
            assert x.request_class == y.request_class
        assert [e.arrival_s for e in a] != [e.arrival_s for e in c]

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_arrivals_monotone_and_positive(self, process):
        events = generate_traffic(
            30, mean_rate_rps=100.0, d_model=D_MODEL, process=process, seed=1
        )
        arrivals = [e.arrival_s for e in events]
        assert all(t > 0 for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_mixes_respected(self):
        events = generate_traffic(
            40,
            mean_rate_rps=100.0,
            d_model=D_MODEL,
            shape_mix=((SHAPES_A, 1.0), (SHAPES_B, 1.0)),
            class_mix=(("x", 1.0), ("y", 1.0)),
            seed=0,
        )
        assert {e.item.shape_key for e in events} == {
            tuple(s.as_tuple() for s in SHAPES_A),
            tuple(s.as_tuple() for s in SHAPES_B),
        }
        assert {e.request_class for e in events} == {"x", "y"}
        # Feature token counts match each event's own pyramid.
        for event in events:
            n_in = sum(s.num_pixels for s in event.item.spatial_shapes)
            assert event.item.features.shape == (n_in, D_MODEL)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            generate_traffic(-1)
        with pytest.raises(ValueError):
            generate_traffic(4, mean_rate_rps=0.0)
        with pytest.raises(ValueError):
            generate_traffic(4, process="weekly")
        with pytest.raises(ValueError):
            generate_traffic(4, burst_factor=0.5)
        with pytest.raises(ValueError):
            generate_traffic(4, class_mix=(("a", -1.0),))
        with pytest.raises(ValueError):
            generate_traffic(4, class_mix=())


# ---------------------------------------------------------------------------
# PR 9: injected-clock regressions, backoff edges, machine-profile threading.


class SteppingClock:
    """Fake monotonic clock advancing a fixed step on every read, so
    deadline loops that consult only the clock terminate in a handful of
    iterations of real time."""

    def __init__(self, start: float = 1000.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class _StubConn:
    """Pipe stand-in: accepts sends, never has a message, survives
    ``close()``.  (No ``fileno``, so ``_send_with_deadline`` falls back to
    the blocking ``send`` — which here just records the message.)"""

    def __init__(self) -> None:
        self.sent: list = []

    def poll(self, timeout: float | None = None) -> bool:
        return False

    def send(self, obj) -> None:
        self.sent.append(obj)

    def close(self) -> None:
        pass


class _StubProcess:
    def __init__(self, alive: bool = True) -> None:
        self._alive = alive

    def is_alive(self) -> bool:
        return self._alive

    def join(self, timeout: float | None = None) -> None:
        pass

    def kill(self) -> None:
        self._alive = False

    def terminate(self) -> None:
        self._alive = False


def _stub_worker(handle, ready=True, process_alive=True, busy=None) -> None:
    """Wire a worker slot to fake pipe/process objects (no subprocesses)."""
    handle.conn = _StubConn()
    handle.process = _StubProcess(process_alive)
    handle.alive = True
    handle.ready = ready
    handle.busy = busy


def _idle_engine(clock, **config_kwargs) -> ServingEngine:
    config = ServingConfig(**{"num_workers": 1, **config_kwargs})
    return ServingEngine(lambda: {"default": lambda f, s: f}, config, clock=clock)


class TestInjectedClock:
    """Regression tests for the PR 9 clock bug: the deadline math in
    ``start()``/``flush()`` read ``time.monotonic()`` directly instead of
    the injected ``self._clock``, so fake-clock tests raced real wall time.
    Advancing only the fake clock must trip both timeouts near-instantly —
    the wall-time bound is what distinguishes the fixed code (fake-clock
    deadline) from the bug (a full real-time ``timeout`` spin)."""

    def test_flush_deadline_follows_injected_clock(self):
        engine = _idle_engine(SteppingClock())
        # A worker stuck busy forever: flush can never drain.
        _stub_worker(engine._workers[0], busy=object())
        begin = time.monotonic()
        with pytest.raises(TimeoutError):
            engine.flush(timeout=5.0)
        assert time.monotonic() - begin < 2.0

    def test_start_wait_ready_deadline_follows_injected_clock(self, monkeypatch):
        engine = _idle_engine(SteppingClock())
        # Spawn "workers" that never report ready.
        monkeypatch.setattr(
            engine, "_spawn", lambda handle: _stub_worker(handle, ready=False)
        )
        begin = time.monotonic()
        with pytest.raises(TimeoutError):
            engine.start(wait_ready=True, timeout=5.0)
        assert time.monotonic() - begin < 2.0


class TestBackoffEdges:
    """Degraded-mode backoff boundary conditions (PR 9 satellite): the cap
    binding exactly, a zero restart budget, and a death reaped in the same
    poll that owes another slot its restart."""

    def test_backoff_caps_exactly_at_max_backoff(self):
        clock = FakeClock()
        engine = _idle_engine(clock, restart_backoff_s=0.5, max_backoff_s=2.0)
        handle = engine._workers[0]
        # 0.5 * 2**(deaths-1): the third death lands exactly on the 2.0 cap,
        # the fourth would exceed it and must clamp to exactly the cap.
        for backoff in (0.5, 1.0, 2.0, 2.0):
            _stub_worker(handle)
            engine._handle_death(handle, now=100.0)
            assert handle.restart_at == 100.0 + backoff
        # The restart fires at exactly restart_at (<=, not <).
        spawned = []

        def fake_spawn(h):
            spawned.append(h.index)
            _stub_worker(h, ready=False)
            h.restart_at = None

        engine._spawn = fake_spawn
        engine._restart_due(now=101.999)
        assert spawned == []
        engine._restart_due(now=102.0)
        assert spawned == [0]
        assert engine.stats.worker_restarts == 1

    def test_max_restarts_zero_retires_before_first_restart(self):
        clock = FakeClock()
        engine = _idle_engine(clock, max_restarts=0)
        handle = engine._workers[0]
        _stub_worker(handle)
        engine._handle_death(handle, now=clock())
        assert handle.retired
        assert handle.restart_at is None
        assert engine.stats.worker_deaths == 1
        spawned = []
        engine._spawn = lambda h: spawned.append(h.index)
        engine._restart_due(now=1e9)
        assert spawned == []
        assert engine.stats.worker_restarts == 0
        assert engine.mode == "degraded"

    def test_death_reaped_while_another_restart_is_due(self):
        clock = FakeClock()
        clock.now = 10.0
        engine = _idle_engine(
            clock, num_workers=2, restart_backoff_s=0.5, max_backoff_s=2.0
        )
        first, second = engine._workers
        # The first slot died earlier; its restart became due at t=5.
        first.deaths = 1
        first.restart_at = 5.0
        # The second slot's process dies right before this poll.
        _stub_worker(second, process_alive=False)
        spawned = []

        def fake_spawn(h):
            spawned.append(h.index)
            _stub_worker(h, ready=False)
            h.restart_at = None

        engine._spawn = fake_spawn
        engine.poll()
        # One poll both reaps the fresh death and performs the due restart.
        assert spawned == [0]
        assert engine.stats.worker_restarts == 1
        assert engine.stats.worker_deaths == 1
        assert not second.alive
        assert second.restart_at == 10.0 + 0.5
        assert engine.mode == "primary"  # the restarted slot keeps us primary


class TestMachineProfileThreading:
    """ModelBankSpec.machine_profile reaches every runner (PR 9)."""

    def test_bank_runners_resolve_spec_profile(self):
        from dataclasses import replace

        from repro.kernels import DispatchThresholds, MachineProfile

        custom = MachineProfile(
            name="serving-host", thresholds=DispatchThresholds(min_tokens=7)
        )
        bank = replace(_spec(), machine_profile=custom).build()
        for runner in bank.runners.values():
            assert runner.machine_profile == custom
        stats = bank.plan_stats()
        assert stats and all(s["profile"] == "serving-host" for s in stats.values())

    def test_bank_default_follows_active_profile(self):
        from repro.kernels import reference_profile

        bank = _spec().build()
        for runner in bank.runners.values():
            assert runner.machine_profile == reference_profile()
        assert all(s["profile"] == "reference" for s in bank.plan_stats().values())

    def test_stream_policies_inherit_spec_profile(self):
        from dataclasses import replace

        from repro.engine import StreamingConfig

        spec = replace(
            _spec(),
            machine_profile="reference",
            streams=(("vid", DEFAConfig(), StreamingConfig()),),
        )
        bank = spec.build()
        assert bank.streaming["vid"].streaming.options.machine_profile == "reference"

    def test_spec_with_profile_is_picklable(self):
        import pickle
        from dataclasses import replace

        from repro.kernels import MachineProfile

        spec = replace(_spec(), machine_profile=MachineProfile(name="pickled"))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.build().runners["fp32"].machine_profile.name == "pickled"


# ---------------------------------------------------------------------------
# PR 10: request lifecycle — admission control, deadlines, watchdog, retry
# budget / poison quarantine.  All FakeClock/stub driven: no worker processes,
# no wall-time sleeps; real pipes appear only in the bounded-send tests.


class TestLifecycleConfigValidation:
    def test_new_knobs_reject_invalid_values(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            ServingConfig(max_queue_depth=0)
        with pytest.raises(ValueError, match="admission"):
            ServingConfig(admission="maybe")
        with pytest.raises(ValueError, match="batch_timeout_s"):
            ServingConfig(batch_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ServingConfig(max_retries=-1)
        with pytest.raises(ValueError, match="dispatch_timeout_s"):
            ServingConfig(dispatch_timeout_s=0.0)

    def test_work_item_deadline_must_be_positive(self):
        features = np.zeros(
            (sum(s.num_pixels for s in SHAPES_A), D_MODEL), dtype=np.float32
        )
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="deadline_s"):
                WorkItem(
                    item_id=1,
                    features=features,
                    spatial_shapes=SHAPES_A,
                    deadline_s=bad,
                )

    def test_submit_deadline_must_be_positive(self):
        engine = ServingEngine(
            lambda: _recording_bank([]), ServingConfig(num_workers=0), clock=FakeClock()
        )
        with pytest.raises(ValueError, match="deadline_s"):
            engine.submit(_item(0, SHAPES_A, 0), deadline_s=-1.0)


class TestAdmissionControl:
    def _engine(self, **config_kwargs):
        config = ServingConfig(
            **{"num_workers": 0, "max_batch_size": 8, "max_wait_s": 100.0, **config_kwargs}
        )
        return ServingEngine(lambda: _recording_bank([]), config, clock=FakeClock())

    def test_full_queue_sheds_with_queue_full_error(self):
        engine = self._engine(max_queue_depth=2)
        futures = [engine.submit(_item(i, SHAPES_A, i)) for i in range(2)]
        with pytest.raises(QueueFullError, match="max_queue_depth=2"):
            engine.submit(_item(2, SHAPES_A, 2))
        assert engine.stats.num_shed == 1
        assert engine.stats.num_requests == 2  # the shed request never queued
        engine.flush()
        for future in futures:
            assert future.result(timeout=1.0) is not None

    def test_block_admission_waits_for_space_then_admits(self):
        engine = self._engine(max_queue_depth=1, admission="block", max_wait_s=0.0)
        first = engine.submit(_item(0, SHAPES_A, 0))
        admitted: list = []
        thread = threading.Thread(
            target=lambda: admitted.append(engine.submit(_item(1, SHAPES_B, 1)))
        )
        thread.start()
        # The submitter blocks until a poll drains the queue below the bound;
        # this loop is the stand-in for the pump thread.
        deadline = time.monotonic() + 30.0
        while thread.is_alive():
            if time.monotonic() > deadline:
                pytest.fail("blocked submit was never admitted")
            engine.poll()
        thread.join(timeout=10.0)
        assert admitted and engine.stats.num_shed == 0
        engine.flush()
        assert first.result(timeout=1.0) is not None
        assert admitted[0].result(timeout=1.0) is not None

    def test_block_admission_wakes_on_shutdown(self):
        engine = self._engine(max_queue_depth=1, admission="block")
        engine.submit(_item(0, SHAPES_A, 0))
        outcome: list = []

        def blocked_submit():
            try:
                engine.submit(_item(1, SHAPES_A, 1))
                outcome.append("admitted")
            except RuntimeError as error:
                outcome.append(error)

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        engine.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        # Whether the thread reached the wait before or after shutdown, it
        # must observe the shutdown, never hang and never be admitted.
        assert len(outcome) == 1
        assert isinstance(outcome[0], RuntimeError)


class TestDeadlines:
    def test_queued_request_expires_with_diagnostic(self):
        clock = FakeClock()
        engine = ServingEngine(
            lambda: _recording_bank([]),
            ServingConfig(num_workers=0, max_batch_size=8, max_wait_s=100.0),
            clock=clock,
        )
        future = engine.submit(_item(7, SHAPES_A, 0), deadline_s=1.0)
        engine.poll()
        assert not future.done()
        clock.advance(1.0)
        engine.poll()
        assert engine.stats.num_expired == 1
        with pytest.raises(DeadlineExceeded, match=r"request 7 expired after 1s"):
            future.result(timeout=1.0)

    def test_item_level_deadline_applies_when_submit_omits_one(self):
        clock = FakeClock()
        engine = ServingEngine(
            lambda: _recording_bank([]),
            ServingConfig(num_workers=0, max_batch_size=8, max_wait_s=100.0),
            clock=clock,
        )
        item = WorkItem(
            item_id="slo",
            features=np.zeros(
                (sum(s.num_pixels for s in SHAPES_A), D_MODEL), dtype=np.float32
            ),
            spatial_shapes=SHAPES_A,
            deadline_s=0.5,
        )
        future = engine.submit(item)
        clock.advance(0.5)
        engine.poll()
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=1.0)

    def test_dispatched_request_never_expires(self):
        clock = FakeClock()
        engine = _idle_engine(clock, max_wait_s=0.0)
        _stub_worker(engine._workers[0])
        future = engine.submit(_item(0, SHAPES_A, 0), deadline_s=1.0)
        engine.poll()
        assert engine._workers[0].busy is not None  # in flight on the worker
        clock.advance(100.0)
        engine.poll()
        assert engine.stats.num_expired == 0
        assert not future.done()  # bounded by the watchdog, not the deadline


class TestWatchdog:
    def _hung_engine(self):
        clock = FakeClock()
        engine = _idle_engine(
            clock, max_wait_s=0.0, batch_timeout_s=1.0, restart_backoff_s=0.5
        )
        _stub_worker(engine._workers[0])
        future = engine.submit(_item(0, SHAPES_A, 0))
        engine.poll()
        assert engine._workers[0].busy is not None
        return engine, clock, future

    def test_watchdog_kills_overdue_batch_and_requeues(self):
        engine, clock, future = self._hung_engine()
        handle = engine._workers[0]
        clock.advance(0.999)
        engine.poll()
        assert engine.stats.watchdog_kills == 0  # one tick short of the bound
        clock.advance(0.001)
        engine.poll()
        assert engine.stats.watchdog_kills == 1
        assert engine.stats.worker_deaths == 1
        assert not handle.alive and handle.process is None  # killed and reaped
        assert handle.restart_at == clock.now + 0.5
        assert engine.stats.num_retried == 1
        assert not future.done()  # requeued as a suspect, not failed
        assert engine.mode == "degraded"

    def test_restart_after_watchdog_kill_serves_suspect_on_worker(self):
        engine, clock, future = self._hung_engine()
        clock.advance(1.0)
        engine.poll()  # watchdog kill
        spawned: list[int] = []

        def fake_spawn(handle):
            spawned.append(handle.index)
            _stub_worker(handle, ready=True)
            handle.restart_at = None

        engine._spawn = fake_spawn
        clock.advance(0.499)
        engine.poll()
        assert spawned == []  # backoff not yet expired on the engine clock
        clock.advance(0.001)
        engine.poll()
        assert spawned == [0]
        assert engine.stats.worker_restarts == 1
        # The same poll redispatches the suspect — alone, and to the worker.
        last = engine.stats.batches[-1]
        assert (last.reason, last.path, last.size) == ("retry", "worker", 1)
        assert engine.mode == "primary"


class TestRetryBudget:
    def _dispatched(self, clock, **config_kwargs):
        engine = _idle_engine(clock, max_wait_s=0.0, **config_kwargs)
        handle = engine._workers[0]
        _stub_worker(handle)
        future = engine.submit(_item(0, SHAPES_A, 0))
        engine.poll()
        assert handle.busy is not None
        return engine, handle, future

    def _fault_reply(self, engine, handle, retryable=True):
        with engine._lock:
            engine._handle_message(
                handle, engine._clock(), ("err", handle.busy.batch_id, "tb", retryable)
            )

    def test_retryable_fault_requeues_then_quarantines_past_budget(self):
        clock = FakeClock()
        engine, handle, future = self._dispatched(clock, max_retries=1)
        self._fault_reply(engine, handle)
        assert engine.stats.num_retried == 1
        assert not future.done()
        engine.poll()  # redispatch, isolated
        assert engine.stats.batches[-1].reason == "retry"
        self._fault_reply(engine, handle)
        assert engine.stats.num_quarantined == 1
        with pytest.raises(PoisonRequestError, match="quarantined as poison") as info:
            future.result(timeout=1.0)
        assert info.value.kills == 2
        assert info.value.max_retries == 1

    def test_non_retryable_error_fails_future_without_retry(self):
        clock = FakeClock()
        engine, handle, future = self._dispatched(clock)
        self._fault_reply(engine, handle, retryable=False)
        assert engine.stats.num_retried == 0
        with pytest.raises(RuntimeError, match="worker forward failed"):
            future.result(timeout=1.0)

    def test_legacy_err_message_without_flag_is_not_retryable(self):
        clock = FakeClock()
        engine, handle, future = self._dispatched(clock)
        with engine._lock:
            engine._handle_message(
                handle, clock(), ("err", handle.busy.batch_id, "tb")
            )
        assert engine.stats.num_retried == 0
        with pytest.raises(RuntimeError, match="worker forward failed"):
            future.result(timeout=1.0)

    def test_suspect_waits_for_worker_while_fresh_requests_serve_degraded(self):
        clock = FakeClock()
        engine, handle, suspect = self._dispatched(clock, restart_backoff_s=50.0)
        with engine._lock:
            engine._handle_death(handle, clock())
        assert engine.stats.num_retried == 1
        fresh = engine.submit(_item(1, SHAPES_A, 1))
        engine.poll()
        # The fresh request served in-process; the suspect must not — it
        # could be the poison that killed the worker, and an inproc forward
        # would take the engine down with it.
        assert fresh.result(timeout=1.0) is not None
        assert engine.stats.degraded_batches == 1
        assert engine.stats.batches[-1].size == 1
        assert not suspect.done()
        assert len(engine._pending) == 1

    def test_suspect_with_all_slots_retired_is_quarantined(self):
        clock = FakeClock()
        engine, handle, future = self._dispatched(clock, max_restarts=0)
        with engine._lock:
            engine._handle_death(handle, clock())
        assert handle.retired
        engine.poll()  # no slot can ever serve the suspect again
        assert engine.stats.num_quarantined == 1
        with pytest.raises(PoisonRequestError):
            future.result(timeout=1.0)


class TestLifecycleDiagnostics:
    def test_flush_timeout_message_names_engine_state(self):
        engine = _idle_engine(SteppingClock())
        _stub_worker(engine._workers[0], busy=object())
        with pytest.raises(
            TimeoutError,
            match=r"mode=primary queue_depth=0 workers=\(w0\[alive=True",
        ):
            engine.flush(timeout=5.0)

    def test_start_timeout_message_names_worker_state(self, monkeypatch):
        engine = _idle_engine(SteppingClock())
        monkeypatch.setattr(
            engine, "_spawn", lambda handle: _stub_worker(handle, ready=False)
        )
        with pytest.raises(
            TimeoutError, match=r"did not report ready.*ready=False"
        ):
            engine.start(wait_ready=True, timeout=5.0)

    def test_shutdown_fails_batch_in_flight_on_worker(self):
        clock = FakeClock()
        engine = _idle_engine(clock, max_wait_s=0.0)
        _stub_worker(engine._workers[0])
        future = engine.submit(_item(0, SHAPES_A, 0))
        engine.poll()
        assert engine._workers[0].busy is not None
        engine.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            future.result(timeout=1.0)

    def test_flush_while_degraded_serves_inproc(self):
        clock = FakeClock()
        engine = _idle_engine(clock, max_wait_s=100.0, restart_backoff_s=50.0)
        handle = engine._workers[0]
        _stub_worker(handle)
        with engine._lock:
            engine._handle_death(handle, clock())
        assert engine.mode == "degraded"
        futures = [engine.submit(_item(i, SHAPES_A, i)) for i in range(3)]
        engine.flush(timeout=5.0)
        for future in futures:
            assert future.result(timeout=1.0) is not None
        assert engine.stats.degraded_batches >= 1
        assert engine.mode == "degraded"  # backoff still pending: no restart


class TestKillWorkerValidation:
    def test_out_of_range_index_raises(self):
        engine = _idle_engine(FakeClock())
        with pytest.raises(ValueError, match="out of range"):
            engine.kill_worker(1)
        with pytest.raises(ValueError, match="out of range"):
            engine.kill_worker(-1)

    def test_returns_whether_a_kill_happened(self):
        engine = _idle_engine(FakeClock())
        assert engine.kill_worker(0) is False  # never spawned
        _stub_worker(engine._workers[0])
        assert engine.kill_worker(0) is True
        assert engine.kill_worker(0) is False  # already dead


class TestWorkerStatsTimeout:
    def test_unresponsive_worker_reports_none_within_timeout(self):
        engine = _idle_engine(FakeClock())
        _stub_worker(engine._workers[0], ready=True)
        begin = time.monotonic()
        assert engine.worker_stats(timeout=0.2) == [None]
        assert time.monotonic() - begin < 5.0

    def test_busy_slot_reports_none_without_touching_the_pipe(self):
        engine = _idle_engine(FakeClock())
        _stub_worker(engine._workers[0], busy=object())
        assert engine.worker_stats(timeout=0.2) == [None]
        assert engine._workers[0].conn.sent == []


class TestBoundedSend:
    def test_roundtrip_matches_connection_wire_format(self):
        a, b = mp.Pipe()
        try:
            payload = {"x": np.arange(5), "label": "batch"}
            _send_with_deadline(a, payload, timeout=5.0)
            assert b.poll(5.0)
            received = b.recv()
            np.testing.assert_array_equal(received["x"], payload["x"])
            assert received["label"] == "batch"
        finally:
            a.close()
            b.close()

    def test_times_out_on_undrained_pipe_and_restores_blocking(self):
        a, b = mp.Pipe()
        try:
            blob = np.zeros(4 << 20, dtype=np.uint8)  # far beyond the pipe buffer
            begin = time.monotonic()
            with pytest.raises(_PipeSendTimeout, match="unsent"):
                _send_with_deadline(a, blob, timeout=0.2)
            assert time.monotonic() - begin < 10.0
            assert os.get_blocking(a.fileno())  # mode restored for reuse
        finally:
            a.close()
            b.close()

    def test_falls_back_to_blocking_send_without_fileno(self):
        conn = _StubConn()
        _send_with_deadline(conn, ("a",), timeout=0.1)
        _send_with_deadline(conn, ("b",), None)
        assert conn.sent == [("a",), ("b",)]
