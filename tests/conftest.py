"""Shared fixtures for the test suite.

Everything is kept at the "tiny" workload scale so the full suite runs in a
few minutes on a laptop; the larger scales are exercised by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.core.pipeline import DEFAAttention
from repro.nn.msdeform_attn import MSDeformAttn
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.nn.weight_fitting import fit_encoder_heads
from repro.nn.models import build_encoder
from repro.utils.shapes import LevelShape
from repro.workloads.specs import get_workload
from repro.workloads.traces import synthetic_workload_input


@pytest.fixture(scope="session")
def tiny_shapes() -> list[LevelShape]:
    """A small three-level pyramid used by operator-level tests."""
    return [LevelShape(8, 12), LevelShape(4, 6), LevelShape(2, 3)]


@pytest.fixture(scope="session")
def tiny_attn() -> MSDeformAttn:
    """A small MSDeformAttn module matching :func:`tiny_shapes`."""
    return MSDeformAttn(d_model=32, num_heads=4, num_levels=3, num_points=2, rng=0)


@pytest.fixture(scope="session")
def tiny_inputs(tiny_shapes):
    """(query, reference_points, value) inputs matching the tiny operator."""
    rng = np.random.default_rng(1)
    n_in = sum(s.num_pixels for s in tiny_shapes)
    value = rng.standard_normal((n_in, 32)).astype(np.float32)
    query = rng.standard_normal((n_in, 32)).astype(np.float32)
    reference = make_reference_points(tiny_shapes)
    return query, reference, value


@pytest.fixture(scope="session")
def tiny_spec():
    """The tiny Deformable DETR workload specification."""
    return get_workload("deformable_detr", "tiny")


@pytest.fixture(scope="session")
def tiny_workload_run(tiny_spec):
    """A fitted encoder + inputs at the tiny scale, shared across tests."""
    features, layout = synthetic_workload_input(tiny_spec, rng=0)
    encoder = build_encoder(tiny_spec.model, rng=1)
    encoder.layers = encoder.layers[:2]
    encoder.num_layers = 2
    pos = sine_positional_encoding(tiny_spec.spatial_shapes, tiny_spec.model.d_model)
    reference = make_reference_points(tiny_spec.spatial_shapes)
    fit_encoder_heads(
        encoder, features, pos, reference, tiny_spec.spatial_shapes, layout, rng=2
    )
    return {
        "spec": tiny_spec,
        "features": features,
        "layout": layout,
        "encoder": encoder,
        "pos": pos,
        "reference_points": reference,
    }


@pytest.fixture(scope="session")
def tiny_defa_output(tiny_workload_run):
    """A detailed DEFA attention output of the first tiny encoder layer."""
    run = tiny_workload_run
    defa = DEFAAttention(run["encoder"].layers[0].self_attn, DEFAConfig())
    query = run["features"] + run["pos"]
    return defa.forward_detailed(
        query, run["reference_points"], run["features"], run["spec"].spatial_shapes
    )
