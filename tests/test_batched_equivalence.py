"""Golden equivalence suite for the batched execution paths.

Every batched kernel must produce, per image, what the single-image code path
produces — within ``1e-5`` absolute tolerance (they are bit-identical in most
configurations, but the batched kernels may regroup float32 reductions).  The
suite covers the raw operator (:class:`MSDeformAttn`), the encoder stack, and
the DEFA pipeline with each algorithm knob (PAP / FWP / quantization) toggled
independently, for batch sizes 1 and 3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.core.pipeline import DEFAAttention
from repro.nn.encoder import DeformableEncoder
from repro.nn.grid_sample import (
    BatchedSamplingTrace,
    ms_deform_attn_core,
    ms_deform_attn_core_batched,
    multi_scale_neighbors,
    multi_scale_neighbors_batched,
)
from repro.nn.msdeform_attn import MSDeformAttn
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.utils.shapes import LevelShape

TOL = 1e-5

SHAPES = [LevelShape(8, 12), LevelShape(4, 6), LevelShape(2, 3)]
N_IN = sum(s.num_pixels for s in SHAPES)
D_MODEL = 32
NUM_HEADS = 4
NUM_POINTS = 2


@pytest.fixture(scope="module")
def attn() -> MSDeformAttn:
    return MSDeformAttn(
        d_model=D_MODEL,
        num_heads=NUM_HEADS,
        num_levels=len(SHAPES),
        num_points=NUM_POINTS,
        rng=0,
    )


def _batch_inputs(batch_size: int, seed: int = 1):
    rng = np.random.default_rng(seed)
    query = rng.standard_normal((batch_size, N_IN, D_MODEL)).astype(np.float32)
    value = rng.standard_normal((batch_size, N_IN, D_MODEL)).astype(np.float32)
    reference = make_reference_points(SHAPES)
    return query, value, reference


class TestBatchedKernels:
    def test_core_batched_matches_loop(self):
        rng = np.random.default_rng(2)
        batch = 3
        value = rng.standard_normal((batch, N_IN, NUM_HEADS, D_MODEL // NUM_HEADS)).astype(
            np.float32
        )
        locs = rng.uniform(
            0.0, 1.0, size=(batch, 17, NUM_HEADS, len(SHAPES), NUM_POINTS, 2)
        ).astype(np.float32)
        weights = rng.random((batch, 17, NUM_HEADS, len(SHAPES), NUM_POINTS)).astype(
            np.float32
        )
        mask = rng.random(weights.shape) > 0.3
        batched = ms_deform_attn_core_batched(value, SHAPES, locs, weights, point_mask=mask)
        for b in range(batch):
            single = ms_deform_attn_core(
                value[b], SHAPES, locs[b], weights[b], point_mask=mask[b]
            )
            np.testing.assert_allclose(batched[b], single, atol=TOL)

    def test_batched_trace_matches_per_image(self):
        rng = np.random.default_rng(3)
        locs = rng.uniform(
            -0.1, 1.1, size=(2, 9, NUM_HEADS, len(SHAPES), NUM_POINTS, 2)
        ).astype(np.float32)
        batched = multi_scale_neighbors_batched(SHAPES, locs)
        assert isinstance(batched, BatchedSamplingTrace)
        assert batched.batch_size == 2
        for b in range(2):
            single = multi_scale_neighbors(SHAPES, locs[b])
            image = batched.image(b)
            np.testing.assert_array_equal(image.flat_indices, single.flat_indices)
            np.testing.assert_array_equal(image.rows, single.rows)
            np.testing.assert_array_equal(image.cols, single.cols)
            np.testing.assert_array_equal(image.valid, single.valid)
            np.testing.assert_allclose(image.weights, single.weights, atol=TOL)


class TestBatchedMSDeformAttn:
    @pytest.mark.parametrize("batch_size", [1, 3])
    def test_forward_detailed_matches_loop(self, attn, batch_size):
        query, value, reference = _batch_inputs(batch_size)
        batched = attn.forward_detailed(query, reference, value, SHAPES, with_trace=True)
        assert batched.output.shape == (batch_size, N_IN, D_MODEL)
        for b in range(batch_size):
            single = attn.forward_detailed(
                query[b], reference, value[b], SHAPES, with_trace=True
            )
            np.testing.assert_allclose(batched.output[b], single.output, atol=TOL)
            np.testing.assert_allclose(
                batched.attention_weights[b], single.attention_weights, atol=TOL
            )
            np.testing.assert_allclose(
                batched.sampling_locations[b], single.sampling_locations, atol=TOL
            )
            np.testing.assert_allclose(batched.value[b], single.value, atol=TOL)
            np.testing.assert_array_equal(
                batched.trace.image(b).flat_indices, single.trace.flat_indices
            )

    def test_per_image_reference_points(self, attn):
        query, value, reference = _batch_inputs(2)
        per_image_ref = np.stack([reference, reference])
        shared = attn.forward(query, reference, value, SHAPES)
        explicit = attn.forward(query, per_image_ref, value, SHAPES)
        np.testing.assert_allclose(shared, explicit, atol=TOL)

    def test_mixed_batching_raises(self, attn):
        query, value, reference = _batch_inputs(2)
        with pytest.raises(ValueError):
            attn.forward_detailed(query, reference, value[0], SHAPES)
        with pytest.raises(ValueError):
            attn.forward_detailed(query[:1], reference, value, SHAPES)


class TestBatchedEncoder:
    @pytest.mark.parametrize("batch_size", [1, 3])
    def test_encoder_matches_loop(self, batch_size):
        encoder = DeformableEncoder(
            num_layers=2,
            d_model=D_MODEL,
            num_heads=NUM_HEADS,
            num_levels=len(SHAPES),
            num_points=NUM_POINTS,
            ffn_dim=64,
            rng=0,
        )
        _, value, reference = _batch_inputs(batch_size, seed=4)
        pos = sine_positional_encoding(SHAPES, D_MODEL)
        batched = encoder.forward_detailed(value, pos, reference, SHAPES)
        assert batched.memory.shape == (batch_size, N_IN, D_MODEL)
        for b in range(batch_size):
            single = encoder.forward(value[b], pos, reference, SHAPES)
            np.testing.assert_allclose(batched.memory[b], single, atol=TOL)


def _defa_configs() -> dict[str, DEFAConfig]:
    return {
        "baseline": DEFAConfig.baseline(),
        "pap_only": DEFAConfig.baseline().with_overrides(enable_pap=True),
        "fwp_only": DEFAConfig.baseline().with_overrides(enable_fwp=True),
        "quant_only": DEFAConfig.baseline().with_overrides(quant_bits=12),
        "full": DEFAConfig(),
    }


class TestBatchedDEFAAttention:
    @pytest.mark.parametrize("batch_size", [1, 3])
    @pytest.mark.parametrize("config_name", sorted(_defa_configs()))
    def test_matches_single_image_loop(self, attn, batch_size, config_name):
        config = _defa_configs()[config_name]
        defa = DEFAAttention(attn, config)
        query, value, reference = _batch_inputs(batch_size, seed=5)
        batched = defa.forward_detailed(query, reference, value, SHAPES)
        assert batched.output.shape == (batch_size, N_IN, D_MODEL)
        assert batched.batch_size == batch_size
        for b in range(batch_size):
            single = defa.forward_detailed(query[b], reference, value[b], SHAPES)
            image = batched.images[b]
            np.testing.assert_allclose(image.output, single.output, atol=TOL)
            np.testing.assert_allclose(batched.output[b], single.output, atol=TOL)
            np.testing.assert_array_equal(image.point_mask, single.point_mask)
            np.testing.assert_array_equal(image.fmap_mask_next, single.fmap_mask_next)
            np.testing.assert_allclose(
                image.attention_weights, single.attention_weights, atol=TOL
            )
            np.testing.assert_allclose(image.fwp.thresholds, single.fwp.thresholds)
            assert image.stats.points_kept == single.stats.points_kept
            assert image.stats.pixels_kept == single.stats.pixels_kept
            assert image.stats.pixels_kept_next == single.stats.pixels_kept_next
            assert image.stats.mask_applied == single.stats.mask_applied
            assert image.stats.offset_clipping_fraction == pytest.approx(
                single.stats.offset_clipping_fraction
            )

    @pytest.mark.parametrize("config_name", ["fwp_only", "full"])
    def test_with_incoming_masks(self, attn, config_name):
        config = _defa_configs()[config_name]
        defa = DEFAAttention(attn, config)
        batch_size = 3
        query, value, reference = _batch_inputs(batch_size, seed=6)
        rng = np.random.default_rng(7)
        masks = rng.random((batch_size, N_IN)) > 0.4
        batched = defa.forward_detailed(query, reference, value, SHAPES, fmap_mask=masks)
        for b in range(batch_size):
            single = defa.forward_detailed(
                query[b], reference, value[b], SHAPES, fmap_mask=masks[b]
            )
            image = batched.images[b]
            np.testing.assert_allclose(image.output, single.output, atol=TOL)
            assert image.stats.pixels_kept == single.stats.pixels_kept
            assert image.stats.mask_applied and single.stats.mask_applied

    def test_bad_batched_mask_shape_raises(self, attn):
        defa = DEFAAttention(attn, DEFAConfig())
        query, value, reference = _batch_inputs(2, seed=8)
        with pytest.raises(ValueError):
            defa.forward_detailed(
                query, reference, value, SHAPES, fmap_mask=np.ones(N_IN, dtype=bool)
            )


class TestBatchedEncoderRunner:
    @pytest.mark.parametrize("config_name", ["baseline", "full"])
    def test_runner_matches_loop(self, config_name):
        config = _defa_configs()[config_name]
        encoder = DeformableEncoder(
            num_layers=2,
            d_model=D_MODEL,
            num_heads=NUM_HEADS,
            num_levels=len(SHAPES),
            num_points=NUM_POINTS,
            ffn_dim=64,
            rng=0,
        )
        runner = DEFAEncoderRunner(encoder, config)
        _, value, reference = _batch_inputs(3, seed=9)
        pos = sine_positional_encoding(SHAPES, D_MODEL)
        batched = runner.forward_batched(value, pos, reference, SHAPES, collect_details=True)
        assert batched.batch_size == 3
        # forward() dispatches batched inputs to the same path.
        dispatched = runner.forward(value, pos, reference, SHAPES)
        np.testing.assert_allclose(dispatched.memory, batched.memory, atol=TOL)
        assert dispatched.batch_size == 3
        for b in range(3):
            single = runner.forward(value[b], pos, reference, SHAPES, collect_details=True)
            np.testing.assert_allclose(batched.images[b].memory, single.memory, atol=TOL)
            np.testing.assert_allclose(batched.memory[b], single.memory, atol=TOL)
            assert len(batched.images[b].layer_stats) == len(single.layer_stats)
            for stats_b, stats_s in zip(batched.images[b].layer_stats, single.layer_stats):
                assert stats_b.points_kept == stats_s.points_kept
                assert stats_b.pixels_kept == stats_s.pixels_kept
                assert stats_b.pixels_kept_next == stats_s.pixels_kept_next
                assert stats_b.mask_applied == stats_s.mask_applied
