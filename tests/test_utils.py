"""Tests for repro.utils: RNG helpers, shapes, tables, serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import DEFAULT_SEED, as_rng, spawn_rngs
from repro.utils.serialization import load_json, save_json
from repro.utils.shapes import (
    LevelShape,
    flatten_index,
    level_start_indices,
    make_level_shapes,
    total_pixels,
    unflatten_index,
)
from repro.utils.tables import format_table


class TestRng:
    def test_default_seed_is_deterministic(self):
        a = as_rng(None).integers(0, 1000, 10)
        b = as_rng(None).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_int_seed(self):
        assert as_rng(3).integers(0, 100) == as_rng(3).integers(0, 100)

    def test_existing_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_rng(gen) is gen

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        assert len(rngs) == 3
        draws = [r.integers(0, 2**30) for r in rngs]
        assert len(set(draws)) == 3

    def test_spawn_rngs_reproducible(self):
        a = [r.integers(0, 2**30) for r in spawn_rngs(5, 4)]
        b = [r.integers(0, 2**30) for r in spawn_rngs(5, 4)]
        assert a == b

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_default_seed_constant(self):
        assert isinstance(DEFAULT_SEED, int)


class TestShapes:
    def test_level_shape_properties(self):
        shape = LevelShape(4, 6)
        assert shape.num_pixels == 24
        assert shape.as_tuple() == (4, 6)

    def test_level_shape_invalid(self):
        with pytest.raises(ValueError):
            LevelShape(0, 5)

    def test_make_level_shapes_coco(self):
        shapes = make_level_shapes(800, 1066, (8, 16, 32, 64))
        assert [s.as_tuple() for s in shapes] == [(100, 134), (50, 67), (25, 34), (13, 17)]

    def test_make_level_shapes_invalid_stride(self):
        with pytest.raises(ValueError):
            make_level_shapes(100, 100, (0,))

    def test_total_pixels(self):
        shapes = [LevelShape(2, 2), LevelShape(1, 3)]
        assert total_pixels(shapes) == 7

    def test_level_start_indices(self):
        shapes = [LevelShape(2, 2), LevelShape(1, 3), LevelShape(1, 1)]
        assert level_start_indices(shapes).tolist() == [0, 4, 7]

    def test_flatten_unflatten_roundtrip(self):
        shapes = [LevelShape(3, 5), LevelShape(2, 2)]
        idx = flatten_index(0, np.array([1, 2]), np.array([4, 0]), shapes)
        level, row, col = unflatten_index(idx, shapes)
        assert level.tolist() == [0, 0]
        assert row.tolist() == [1, 2]
        assert col.tolist() == [4, 0]

    def test_flatten_second_level_offset(self):
        shapes = [LevelShape(3, 5), LevelShape(2, 2)]
        idx = flatten_index(1, np.array([0]), np.array([1]), shapes)
        assert idx.tolist() == [16]

    def test_flatten_out_of_bounds(self):
        shapes = [LevelShape(3, 5)]
        with pytest.raises(ValueError):
            flatten_index(0, np.array([3]), np.array([0]), shapes)

    def test_unflatten_out_of_range(self):
        shapes = [LevelShape(2, 2)]
        with pytest.raises(ValueError):
            unflatten_index(np.array([4]), shapes)

    @given(
        height=st.integers(1, 20),
        width=st.integers(1, 20),
        second=st.integers(1, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, height, width, second):
        shapes = [LevelShape(height, width), LevelShape(second, second)]
        n = total_pixels(shapes)
        idx = np.arange(n)
        level, row, col = unflatten_index(idx, shapes)
        widths = np.array([width, second])
        starts = level_start_indices(shapes)
        rebuilt = starts[level] + row * widths[level] + col
        assert np.array_equal(rebuilt, idx)


class TestTables:
    def test_basic_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.25]])
        assert "a" in text and "x" in text
        assert "2.500" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_format(self):
        text = format_table(["v"], [[1.23456]], float_fmt=".1f")
        assert "1.2" in text and "1.23" not in text


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        data = {"a": np.float32(1.5), "b": np.arange(3), "c": [np.int64(2), "text"], "d": np.bool_(True)}
        path = save_json(tmp_path / "out.json", data)
        loaded = load_json(path)
        assert loaded["a"] == 1.5
        assert loaded["b"] == [0, 1, 2]
        assert loaded["c"] == [2, "text"]
        assert loaded["d"] is True

    def test_nested_dirs_created(self, tmp_path):
        path = save_json(tmp_path / "sub" / "dir" / "x.json", {"k": 1})
        assert path.exists()
