"""Tests for the DEFA attention pipeline, encoder runner and weight fitting."""

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner, run_baseline_encoder
from repro.core.pipeline import DEFAAttention
from repro.eval.fidelity import compare_outputs
from repro.nn.weight_fitting import (
    FittingConfig,
    ObjectLayout,
    build_desired_targets,
    ridge_fit,
)


class TestDEFAAttention:
    def test_output_shape_and_masks(self, tiny_defa_output, tiny_spec):
        out = tiny_defa_output
        n_in = tiny_spec.num_tokens
        assert out.output.shape == (n_in, tiny_spec.model.d_model)
        assert out.fmap_mask_next.shape == (n_in,)
        assert out.point_mask.shape[0] == n_in
        assert out.stats.points_kept <= out.stats.points_total

    def test_pap_reduces_points(self, tiny_defa_output):
        assert tiny_defa_output.stats.point_reduction > 0.3

    def test_fwp_mask_generated(self, tiny_defa_output):
        assert 0.0 < tiny_defa_output.fwp.pruned_fraction < 1.0

    def test_flops_reduction_positive(self, tiny_defa_output):
        assert tiny_defa_output.stats.flops_reduction > 0.2

    def test_baseline_config_is_lossless(self, tiny_workload_run):
        run = tiny_workload_run
        attn = run["encoder"].layers[0].self_attn
        defa = DEFAAttention(attn, DEFAConfig.baseline())
        query = run["features"] + run["pos"]
        out = defa.forward_detailed(
            query, run["reference_points"], run["features"], run["spec"].spatial_shapes
        )
        reference = attn(
            query, run["reference_points"], run["features"], run["spec"].spatial_shapes
        )
        assert np.allclose(out.output, reference, atol=1e-3)
        assert out.stats.point_reduction == 0.0
        assert out.stats.pixel_reduction == 0.0

    def test_fmap_mask_is_applied(self, tiny_workload_run):
        run = tiny_workload_run
        attn = run["encoder"].layers[0].self_attn
        defa = DEFAAttention(attn, DEFAConfig())
        query = run["features"] + run["pos"]
        shapes = run["spec"].spatial_shapes
        n_in = run["spec"].num_tokens
        mask = np.zeros(n_in, dtype=bool)  # prune everything
        out = defa.forward_detailed(
            query, run["reference_points"], run["features"], shapes, fmap_mask=mask
        )
        assert out.stats.pixels_kept == 0
        assert out.stats.pixel_reduction == 1.0

    def test_first_block_convention(self, tiny_workload_run, tiny_defa_output, tiny_spec):
        """First-block stats convention: with ``fmap_mask=None`` and
        ``enable_fwp=True``, ``pixels_kept`` equals ``pixels_total`` (no mask
        was received to apply — FWP masks always come from the *previous*
        block) while the mask generated for the next block is accounted in
        ``pixels_kept_next``.  ``mask_applied`` makes the convention explicit.
        """
        n_in = tiny_spec.num_tokens
        stats = tiny_defa_output.stats
        # tiny_defa_output runs the default config (enable_fwp=True), no mask.
        assert not stats.mask_applied
        assert stats.pixels_kept == stats.pixels_total == n_in
        assert stats.pixel_reduction == 0.0
        # The block still *generates* a pruning mask for its successor.
        assert stats.pixels_kept_next < n_in
        assert stats.pixel_reduction_next > 0.0
        # Applying any mask (here: the generated one) flips the flag and makes
        # pixels_kept a measurement again.
        run = tiny_workload_run
        defa = DEFAAttention(run["encoder"].layers[0].self_attn, DEFAConfig())
        masked = defa.forward_detailed(
            run["features"] + run["pos"],
            run["reference_points"],
            run["features"],
            run["spec"].spatial_shapes,
            fmap_mask=tiny_defa_output.fmap_mask_next,
        )
        assert masked.stats.mask_applied
        assert masked.stats.pixels_kept == tiny_defa_output.stats.pixels_kept_next

    def test_wrong_mask_length_raises(self, tiny_workload_run):
        run = tiny_workload_run
        defa = DEFAAttention(run["encoder"].layers[0].self_attn, DEFAConfig())
        with pytest.raises(ValueError):
            defa.forward_detailed(
                run["features"] + run["pos"],
                run["reference_points"],
                run["features"],
                run["spec"].spatial_shapes,
                fmap_mask=np.ones(3, dtype=bool),
            )

    def test_defa_output_close_to_baseline(self, tiny_workload_run, tiny_defa_output):
        """The DEFA techniques perturb the block output only mildly."""
        run = tiny_workload_run
        attn = run["encoder"].layers[0].self_attn
        reference = attn(
            run["features"] + run["pos"],
            run["reference_points"],
            run["features"],
            run["spec"].spatial_shapes,
        )
        fidelity = compare_outputs(reference, tiny_defa_output.output)
        assert fidelity.relative_error < 0.5
        assert fidelity.mean_cosine_similarity > 0.8


class TestDEFAEncoderRunner:
    def test_mask_propagation_and_stats(self, tiny_workload_run):
        run = tiny_workload_run
        runner = DEFAEncoderRunner(run["encoder"], DEFAConfig())
        result = runner.forward(
            run["features"],
            run["pos"],
            run["reference_points"],
            run["spec"].spatial_shapes,
            collect_details=True,
        )
        assert len(result.layer_stats) == 2
        # first block receives no mask
        assert result.layer_stats[0].pixel_reduction == 0.0
        # second block receives the mask generated by the first
        assert result.layer_stats[1].pixels_kept == result.layer_outputs[0].fwp.num_kept
        assert 0.0 < result.mean_point_reduction < 1.0

    def test_memory_close_to_baseline(self, tiny_workload_run):
        run = tiny_workload_run
        baseline = run_baseline_encoder(
            run["encoder"],
            run["features"],
            run["pos"],
            run["reference_points"],
            run["spec"].spatial_shapes,
        )
        runner = DEFAEncoderRunner(run["encoder"], DEFAConfig())
        result = runner.forward(
            run["features"], run["pos"], run["reference_points"], run["spec"].spatial_shapes
        )
        fidelity = compare_outputs(baseline, result.memory)
        assert fidelity.relative_error < 0.6

    def test_int8_is_much_worse_than_int12(self, tiny_workload_run):
        run = tiny_workload_run
        baseline = run_baseline_encoder(
            run["encoder"],
            run["features"],
            run["pos"],
            run["reference_points"],
            run["spec"].spatial_shapes,
        )
        def error(bits):
            config = DEFAConfig.baseline().with_overrides(quant_bits=bits)
            result = DEFAEncoderRunner(run["encoder"], config).forward(
                run["features"], run["pos"], run["reference_points"], run["spec"].spatial_shapes
            )
            return compare_outputs(baseline, result.memory).relative_error

        assert error(8) > 2 * error(12)


class TestWeightFitting:
    def test_object_layout_from_boxes(self):
        boxes = np.array([[0.1, 0.1, 0.3, 0.5]])
        layout = ObjectLayout.from_boxes(boxes)
        assert layout.centers[0] == pytest.approx([0.2, 0.3])
        assert layout.radii[0] == pytest.approx(0.15)

    def test_object_layout_validation(self):
        with pytest.raises(ValueError):
            ObjectLayout(centers=np.zeros((0, 2)), radii=np.zeros(0))
        with pytest.raises(ValueError):
            ObjectLayout(centers=np.zeros((2, 2)), radii=np.zeros(3))

    def test_ridge_fit_recovers_linear_map(self):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((500, 16))
        true_w = rng.standard_normal((16, 3))
        targets = features @ true_w + 2.0
        weight, bias = ridge_fit(features, targets, ridge_lambda=1e-6)
        assert np.allclose(weight, true_w, atol=1e-3)
        assert np.allclose(bias, 2.0, atol=1e-3)

    def test_desired_targets_shapes(self, tiny_workload_run):
        run = tiny_workload_run
        shapes = run["spec"].spatial_shapes
        offsets, logits = build_desired_targets(
            run["reference_points"], shapes, run["layout"], num_heads=8, num_points=4, rng=0
        )
        n_q = run["spec"].num_tokens
        assert offsets.shape == (n_q, 8, len(shapes), 4, 2)
        assert logits.shape == (n_q, 8, len(shapes) * 4)

    def test_desired_logits_peaked(self, tiny_workload_run):
        """Targets must produce peaked attention (what PAP exploits)."""
        run = tiny_workload_run
        config = FittingConfig()
        _, logits = build_desired_targets(
            run["reference_points"],
            run["spec"].spatial_shapes,
            run["layout"],
            num_heads=8,
            num_points=4,
            config=config,
            rng=0,
        )
        spread = logits.max(axis=-1) - logits.min(axis=-1)
        assert np.mean(spread) > 0.5 * (config.logit_high - config.logit_low)

    def test_fitted_attention_is_concentrated(self, tiny_workload_run, tiny_defa_output):
        """After fitting, most attention probabilities are near zero (PAP's premise)."""
        probs = tiny_defa_output.attention_weights
        near_zero = np.mean(tiny_defa_output.pap.attention_weights < 0.035)
        assert near_zero > 0.5
