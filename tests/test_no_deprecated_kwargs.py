"""Tier-1 guard: internal code must not use the deprecated loose kwargs.

Runs the same AST checker CI's lint job runs (``tools/
check_deprecated_kwargs.py``): any call of a shimmed surface under
``src/repro/`` passing ``sparse_mode=``/``backend=`` keywords fails —
internal code carries its knobs in one ``ExecutionOptions`` object; the
legacy keywords exist only for external callers (and warn).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_deprecated_kwargs import find_violations, main  # noqa: E402


def test_internal_code_has_no_deprecated_kwargs(capsys):
    assert main(str(REPO_ROOT / "src" / "repro")) == 0, capsys.readouterr().out


def test_checker_flags_deprecated_keyword(tmp_path):
    offender = tmp_path / "offender.py"
    offender.write_text(
        "runner = DEFAEncoderRunner(encoder, config, sparse_mode='dense')\n"
        "out = layer.forward_detailed(q, r, v, shapes, backend='fused')\n"
        "ok = DEFAEncoderRunner(encoder, config, options=options)\n"
        "unrelated = use_sparse_rows(x, sparse_mode='auto')\n"
    )
    violations = find_violations(offender)
    assert [(v[2], v[3]) for v in violations] == [
        ("DEFAEncoderRunner", "sparse_mode"),
        ("forward_detailed", "backend"),
    ]


def test_checker_errors_on_missing_directory(tmp_path):
    assert main(str(tmp_path / "nope")) == 2
