"""Tests for streaming video sessions: temporal reuse, serving integration.

The session tests drive :class:`StreamingEncoderSession` directly on tiny
synthetic videos and assert the frame-kind state machine (cold / warm /
reused), the cross-frame frozen-row patching, the exact static fast path, the
cold-resync triggers and the warm-arena accounting.  The serving tests gate
the stream-affine ``video`` request class bit-equal to the serial per-session
loop at 0 and 1 workers (warm state follows one process in kill-free runs,
the regime where the bit-equality gate is defined).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.engine import (
    ModelBankSpec,
    ServingConfig,
    ServingEngine,
    StreamingConfig,
    StreamingEncoderSession,
    generate_traffic,
    generate_video_traffic,
    merge_traffic,
    replay_traffic,
    serial_reference_outputs,
)
from repro.eval.profiler import measure_streaming_blockwise_equivalence
from repro.nn.encoder import DeformableEncoder
from repro.utils.shapes import LevelShape
from repro.workloads.specs import get_workload
from repro.workloads.video import SyntheticVideoStream, VideoStreamSpec

SHAPES = (LevelShape(8, 12), LevelShape(4, 6))
D_MODEL = 32


def _encoder(num_layers: int = 2) -> DeformableEncoder:
    return DeformableEncoder(
        num_layers=num_layers,
        d_model=D_MODEL,
        num_heads=4,
        num_levels=len(SHAPES),
        num_points=2,
        ffn_dim=64,
        rng=0,
    )


def _session(**streaming_kwargs) -> StreamingEncoderSession:
    return StreamingEncoderSession(
        _encoder(),
        DEFAConfig(fwp_k=1.0),
        SHAPES,
        StreamingConfig(**streaming_kwargs),
    )


def _stream(**spec_kwargs) -> SyntheticVideoStream:
    spec_kwargs.setdefault("motion", 0.01)
    return SyntheticVideoStream(SHAPES, D_MODEL, VideoStreamSpec(**spec_kwargs))


class TestVideoWorkload:
    def test_frames_are_deterministic_and_pure(self):
        a = _stream(seed=3)
        b = _stream(seed=3)
        np.testing.assert_array_equal(a.frame(4), b.frame(4))
        # Pure in the index: out-of-order re-rendering is bit-identical.
        frame2 = a.frame(2).copy()
        a.frame(5)
        np.testing.assert_array_equal(a.frame(2), frame2)

    def test_slow_motion_quantizes_to_identical_frames(self):
        # Tiny motion on a coarse grid: most consecutive frames move no
        # object across a cell boundary, so they are bit-identical.
        stream = _stream(motion=1e-4, num_frames=6)
        identical = sum(
            np.array_equal(stream.frame(i), stream.frame(i + 1)) for i in range(5)
        )
        assert identical >= 3

    def test_static_rows_oracle_matches_frames(self):
        stream = _stream(seed=1)
        static = stream.static_rows(3)
        changed = np.any(stream.frame(2) != stream.frame(3), axis=1)
        np.testing.assert_array_equal(static, ~changed)

    def test_objects_stay_in_bounds(self):
        # Reflection keeps long streams covered: frame 500 still renders.
        stream = _stream(motion=0.05)
        frame = stream.frame(500)
        assert frame.shape == (stream.num_tokens, D_MODEL)


class TestSessionStateMachine:
    def test_first_frame_is_cold(self):
        session = _session()
        result = session.process(_stream().frame(0))
        assert result.kind == "cold"
        assert result.computed_rows == result.total_rows
        assert result.pixels_kept == 1.0

    def test_identical_frame_is_reused_exactly(self):
        session = _session()
        frame = _stream().frame(0)
        first = session.process(frame)
        second = session.process(frame.copy())
        assert second.kind == "reused"
        assert second.computed_rows == 0
        np.testing.assert_array_equal(first.memory, second.memory)

    def test_small_change_runs_warm_with_frozen_rows(self):
        # The default range-derived radii cover this tiny grid entirely;
        # pin a small dilation so the frozen-row machinery is observable.
        session = _session(dilation=1)
        stream = _stream(seed=2)
        cold = session.process(stream.frame(0), 0)
        warm = session.process(stream.frame(1), 1)
        assert warm.kind == "warm"
        assert 0 < warm.computed_rows < warm.total_rows
        # Rows outside the dilated dirty set are patched from the previous
        # frame's memory — bit-equal, the cross-frame frozen-row convention.
        identical = ~np.any(warm.memory != cold.memory, axis=1)
        assert identical.sum() >= warm.total_rows - warm.computed_rows
        assert warm.total_rows - warm.computed_rows > 0

    def test_keyframe_interval_forces_cold(self):
        session = _session(keyframe_interval=2)
        frame = _stream().frame(0)
        kinds = [session.process(frame.copy(), i).kind for i in range(5)]
        assert kinds == ["cold", "reused", "cold", "reused", "cold"]

    def test_frame_index_discontinuity_forces_cold(self):
        session = _session()
        stream = _stream()
        session.process(stream.frame(0), 0)
        assert session.process(stream.frame(1), 1).kind != "cold"
        # A gap (dropped frames, serving restart) resynchronizes cold.
        assert session.process(stream.frame(5), 5).kind == "cold"
        # Replaying an old index is also a discontinuity.
        assert session.process(stream.frame(2), 2).kind == "cold"

    def test_reset_forces_cold(self):
        session = _session()
        frame = _stream().frame(0)
        session.process(frame, 0)
        session.reset()
        assert session.process(frame, 1).kind == "cold"

    def test_unbounded_ranges_recompute_all_rows(self):
        session = StreamingEncoderSession(
            _encoder(),
            DEFAConfig(fwp_k=1.0, enable_range_narrowing=False),
            SHAPES,
            StreamingConfig(),
        )
        stream = _stream(seed=2)
        session.process(stream.frame(0), 0)
        warm = session.process(stream.frame(1), 1)
        # Without bounded ranges there is no locality: a dirty frame
        # recomputes every row (the static fast path still exists).
        assert warm.kind == "warm"
        assert warm.computed_rows == warm.total_rows

    def test_wrong_shape_rejected(self):
        session = _session()
        with pytest.raises(ValueError, match="pyramid"):
            session.process(np.zeros((7, D_MODEL), dtype=np.float32))

    def test_collect_details_rejected(self):
        from repro.kernels import ExecutionOptions

        with pytest.raises(ValueError, match="collect_details"):
            StreamingConfig(options=ExecutionOptions(collect_details=True))


class TestWarmArenas:
    def test_hits_climb_and_bytes_plateau(self):
        session = _session()
        stream = _stream(seed=4)
        session.process(stream.frame(0), 0)
        first = session.plan_stats()
        for i in range(1, 5):
            session.process(stream.frame(i), i)
        final = session.plan_stats()
        assert final["hits"] > first["hits"]
        assert final["bytes"] == first["bytes"]


class TestLockstepEquivalence:
    def test_streaming_blockwise_fp32(self):
        drift = measure_streaming_blockwise_equivalence(
            get_workload("deformable_detr", "tiny"),
            config=DEFAConfig(fwp_k=1.0, quant_bits=None, enable_query_pruning=True),
            num_layers=2,
            num_frames=3,
            rng=0,
        )
        assert drift <= 1e-5

    def test_streaming_blockwise_int12(self):
        drift = measure_streaming_blockwise_equivalence(
            get_workload("deformable_detr", "tiny"), num_layers=2, num_frames=3, rng=0
        )
        assert drift <= 2e-2


def _video_spec() -> ModelBankSpec:
    return ModelBankSpec(
        num_layers=2,
        d_model=D_MODEL,
        num_heads=4,
        num_levels=len(SHAPES),
        num_points=2,
        ffn_dim=64,
        rng_seed=0,
        streams=(("video", DEFAConfig(fwp_k=1.0), StreamingConfig()),),
    )


def _video_events():
    video = generate_video_traffic(
        2, 5, spatial_shapes=SHAPES, d_model=D_MODEL, seed=5
    )
    uniform = generate_traffic(
        8, d_model=D_MODEL, shape_mix=((SHAPES, 1.0),), seed=6
    )
    return merge_traffic(video, uniform)


class TestStreamingServing:
    def test_video_traffic_preserves_frame_order(self):
        events = _video_events()
        per_stream: dict[str, list[int]] = {}
        for event in events:
            if event.item.stream_id is not None:
                per_stream.setdefault(event.item.stream_id, []).append(
                    event.item.frame_index
                )
        assert set(per_stream) == {"stream-0", "stream-1"}
        for indices in per_stream.values():
            assert indices == sorted(indices)

    def test_stream_overlap_with_stateless_class_rejected(self):
        from repro.engine.serving import DEFAULT_REQUEST_CLASS

        with pytest.raises(ValueError, match="both"):
            ModelBankSpec(
                streams=((DEFAULT_REQUEST_CLASS, DEFAConfig(), StreamingConfig()),)
            ).build()

    def test_streaming_class_requires_meta(self):
        bank = _video_spec().build()
        features = np.zeros((1, sum(s.num_pixels for s in SHAPES), D_MODEL))
        with pytest.raises(ValueError, match="stream"):
            bank.forward("video", features, list(SHAPES))

    @pytest.mark.parametrize("num_workers", [0, 1])
    def test_served_bit_equal_to_serial_sessions(self, num_workers):
        """The acceptance gate: mixed stateless + video traffic, served
        outputs bit-equal to the serial per-session reference loop."""
        spec = _video_spec()
        events = _video_events()
        engine = ServingEngine(
            spec.build,
            ServingConfig(num_workers=num_workers, max_wait_s=0.001),
        ).start()
        try:
            result = replay_traffic(engine, events, speed=0)
        finally:
            engine.shutdown()
        reference = serial_reference_outputs(spec.build(), events)
        for served, expected in zip(result.outputs, reference):
            np.testing.assert_array_equal(served, expected)

    def test_sticky_routing_keeps_stream_on_one_worker(self):
        spec = _video_spec()
        events = generate_video_traffic(
            2, 4, spatial_shapes=SHAPES, d_model=D_MODEL, seed=7
        )
        engine = ServingEngine(
            spec.build, ServingConfig(num_workers=2, max_wait_s=0.001)
        ).start()
        try:
            replay_traffic(engine, events, speed=0)
            routes = dict(engine._stream_routes)
        finally:
            engine.shutdown()
        assert set(routes) == {"stream-0", "stream-1"}
        # Every dispatched video batch went to its stream's routed worker.
        for record in engine.stats.batches:
            assert record.request_class == "video"
            assert record.path == "worker"
