"""Encoder-level golden equivalence for the block-sparse encoder (PR 4).

Under :attr:`DEFAConfig.enable_query_pruning` the FWP mask carries through
the *whole* encoder block: a pruned pixel skips the attention projections
(sparse execution v2) *and* the inter-block residual adds, ``norm1``, FFN and
``norm2``, leaving its row frozen at the block input.  Both execution paths
implement those semantics — the dense path computes everything and masks, the
sparse path row-compacts — so across multi-block runs with FWP masks evolving
block to block they must agree to 1e-5 in fp32 (single and batched; INT12 is
bounded by accumulated quantization steps instead), batched sparse must be
bit-equal to the single-image sparse loop, and the first-block
``fmap_mask=None`` convention must keep the first block fully dense even in
forced sparse mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.nn.encoder import DeformableEncoder
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.utils.shapes import LevelShape

TOL = 1e-5
"""Strict float32-path equivalence tolerance (unquantized configs)."""

ENCODER_QUANT_TOL = 2e-2
"""INT12 multi-block tolerance: each block may differ by a few quantization
steps (the single-block 5e-3 bound) and block-to-block propagation through
the LayerNorm/FFN stages accumulates them."""

SHAPES = [LevelShape(10, 14), LevelShape(5, 7), LevelShape(3, 4)]
N_IN = sum(s.num_pixels for s in SHAPES)
D_MODEL, N_H, N_P = 32, 4, 2
NUM_LAYERS = 3

QP_FP32 = DEFAConfig(quant_bits=None, enable_query_pruning=True)
QP_INT12 = DEFAConfig(enable_query_pruning=True)


def _make_encoder(seed: int = 0, num_layers: int = NUM_LAYERS) -> DeformableEncoder:
    return DeformableEncoder(
        num_layers=num_layers,
        d_model=D_MODEL,
        num_heads=N_H,
        num_levels=len(SHAPES),
        num_points=N_P,
        ffn_dim=64,
        rng=seed,
    )


def _inputs(seed: int = 0, batch: int | None = None):
    rng = np.random.default_rng(seed)
    lead = () if batch is None else (batch,)
    features = rng.standard_normal(lead + (N_IN, D_MODEL)).astype(np.float32)
    pos = sine_positional_encoding(SHAPES, D_MODEL)
    reference = make_reference_points(SHAPES)
    return features, pos, reference


class TestBlockSparseEncoderEquivalence:
    @pytest.mark.parametrize(
        "config, tol", [(QP_FP32, TOL), (QP_INT12, ENCODER_QUANT_TOL)]
    )
    def test_multi_block_sparse_matches_dense(self, config, tol):
        """Masks evolve block to block; the two paths stay equivalent."""
        encoder = _make_encoder(seed=0)
        features, pos, reference = _inputs(seed=1)
        dense = DEFAEncoderRunner(encoder, config, sparse_mode="dense")
        sparse = DEFAEncoderRunner(encoder, config, sparse_mode="sparse")
        out_dense = dense.forward(features, pos, reference, SHAPES, collect_details=True)
        out_sparse = sparse.forward(features, pos, reference, SHAPES, collect_details=True)
        np.testing.assert_allclose(out_sparse.memory, out_dense.memory, atol=tol)
        # Identical mask propagation: the FWP mask each block generates is
        # exact (integer frequency counting), so the two paths must agree on
        # every mask bit-for-bit...
        for lo_d, lo_s in zip(out_dense.layer_outputs, out_sparse.layer_outputs):
            np.testing.assert_array_equal(lo_s.fmap_mask_next, lo_d.fmap_mask_next)
        # The always-collected trajectory record mirrors the detailed outputs.
        for mask, lo in zip(out_sparse.fmap_masks, out_sparse.layer_outputs):
            np.testing.assert_array_equal(mask, lo.fmap_mask_next)
        # ...and the masks must actually evolve (this workload prunes).
        masks = [lo.fmap_mask_next for lo in out_sparse.layer_outputs]
        assert all(m.sum() < N_IN for m in masks)
        # Stats record the execution profile: first block dense by
        # convention, masked blocks row-compacted in forced sparse mode.
        assert [s.sparse_ffn for s in out_sparse.layer_stats] == [False, True, True]
        assert [s.sparse_ffn for s in out_dense.layer_stats] == [False] * NUM_LAYERS

    def test_batched_sparse_matches_single_image_loop(self):
        """Per-image batched results equal single-image sparse execution.

        Mask trajectories and stats must match *exactly* (they are integer
        threshold decisions on identical inputs).  The memory is held to the
        repo-standard 1e-5 rather than bit-equality: the batched FFN stage
        runs one flat matmul over the kept rows of all images while the
        single-image loop runs per-image matmuls, and BLAS may pick a
        different kernel per row count (see ``FeedForward.forward_rows``) —
        bit-identical on this machine, one-ulp wiggle room across builds.
        """
        batch = 3
        encoder = _make_encoder(seed=2)
        features, pos, reference = _inputs(seed=3, batch=batch)
        sparse = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode="sparse")
        out_batched = sparse.forward(features, pos, reference, SHAPES)
        for b in range(batch):
            single = sparse.forward(features[b], pos, reference, SHAPES)
            np.testing.assert_allclose(out_batched.memory[b], single.memory, atol=TOL)
            np.testing.assert_allclose(
                out_batched.images[b].memory, single.memory, atol=TOL
            )
            for mask_b, mask_s in zip(out_batched.images[b].fmap_masks, single.fmap_masks):
                np.testing.assert_array_equal(mask_b, mask_s)
            for st_b, st_s in zip(out_batched.images[b].layer_stats, single.layer_stats):
                assert st_b.sparse_ffn == st_s.sparse_ffn
                assert st_b.pixels_kept == st_s.pixels_kept

    @pytest.mark.parametrize(
        "config, tol", [(QP_FP32, TOL), (QP_INT12, ENCODER_QUANT_TOL)]
    )
    def test_batched_sparse_matches_batched_dense(self, config, tol):
        encoder = _make_encoder(seed=4)
        features, pos, reference = _inputs(seed=5, batch=2)
        dense = DEFAEncoderRunner(encoder, config, sparse_mode="dense")
        sparse = DEFAEncoderRunner(encoder, config, sparse_mode="sparse")
        out_dense = dense.forward(features, pos, reference, SHAPES)
        out_sparse = sparse.forward(features, pos, reference, SHAPES)
        np.testing.assert_allclose(out_sparse.memory, out_dense.memory, atol=tol)

    @pytest.mark.parametrize("sparse_mode", ["dense", "sparse"])
    def test_frozen_rows_carry_the_block_input(self, sparse_mode):
        """A pixel pruned by block i's incoming mask leaves block i unchanged.

        Reconstructs the stage input of block 1 from the detailed block-0
        outputs and checks that the rows pruned by block 0's generated mask
        are carried through blocks 1..L-1 verbatim — on both execution paths.
        """
        encoder = _make_encoder(seed=6)
        features, pos, reference = _inputs(seed=7)
        runner = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode=sparse_mode)
        result = runner.forward(features, pos, reference, SHAPES, collect_details=True)
        # Block 0 runs fully dense (no incoming mask): its stage output is
        # the ordinary norm2(z + ffn(z)), z = norm1(src + attn).
        x1 = encoder.layers[0].forward_ffn_stage(
            features, result.layer_outputs[0].output
        )
        mask1 = result.layer_outputs[0].fmap_mask_next
        pruned = ~np.asarray(mask1, dtype=bool)
        assert pruned.any(), "workload must actually prune for this test"
        # A row pruned by block 1 but revived by block 2's mask changes again
        # in block 2, so the exact invariant is on the rows pruned by *every*
        # remaining block's incoming mask: they equal their block-1 input in
        # the final memory.
        incoming = [mask1] + [
            out.fmap_mask_next for out in result.layer_outputs[1:-1]
        ]
        always_pruned = np.ones(N_IN, dtype=bool)
        for m in incoming:
            always_pruned &= ~np.asarray(m, dtype=bool)
        assert always_pruned.any()
        np.testing.assert_array_equal(
            result.memory[always_pruned], x1[always_pruned]
        )

    def test_first_block_convention_under_ffn_pruning(self):
        """``fmap_mask=None`` keeps the whole first block dense — attention
        *and* FFN stage — even in forced sparse mode with query pruning on."""
        encoder = _make_encoder(seed=8, num_layers=1)
        features, pos, reference = _inputs(seed=9)
        with_qp = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode="sparse")
        without_qp = DEFAEncoderRunner(
            encoder, DEFAConfig(quant_bits=None), sparse_mode="sparse"
        )
        out_qp = with_qp.forward(features, pos, reference, SHAPES)
        out_plain = without_qp.forward(features, pos, reference, SHAPES)
        stats = out_qp.layer_stats[0]
        assert not stats.mask_applied
        assert stats.pixels_kept == stats.pixels_total == N_IN
        assert not stats.sparse_ffn and not stats.sparse_query
        assert not stats.sparse_projection
        # With no incoming mask, query pruning is a no-op: bit-identical.
        np.testing.assert_array_equal(out_qp.memory, out_plain.memory)

    def test_query_pruning_off_never_prunes_ffn(self):
        """The paper's values-only FWP semantics are untouched: without query
        pruning the inter-block stage runs dense for every block."""
        encoder = _make_encoder(seed=10)
        features, pos, reference = _inputs(seed=11)
        runner = DEFAEncoderRunner(
            encoder, DEFAConfig(quant_bits=None), sparse_mode="sparse"
        )
        out = runner.forward(features, pos, reference, SHAPES)
        assert all(not s.sparse_ffn for s in out.layer_stats)


class TestFfnStageDispatch:
    def test_auto_mode_keeps_tiny_inputs_dense(self):
        """Below SPARSE_AUTO_FFN_MIN_TOKENS the auto stage stays dense (this
        geometry has N_IN < 512), with unchanged numerics."""
        encoder = _make_encoder(seed=12)
        features, pos, reference = _inputs(seed=13)
        auto = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode="auto")
        forced = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode="sparse")
        out_auto = auto.forward(features, pos, reference, SHAPES)
        out_forced = forced.forward(features, pos, reference, SHAPES)
        assert all(not s.sparse_ffn for s in out_auto.layer_stats)
        assert any(s.sparse_ffn for s in out_forced.layer_stats)
        np.testing.assert_allclose(out_auto.memory, out_forced.memory, atol=TOL)

    def test_enable_sparse_ffn_escape_hatch(self):
        """enable_sparse_ffn=False reproduces the PR 3 cost profile (dense
        stage) under identical frozen-row semantics."""
        encoder = _make_encoder(seed=14)
        features, pos, reference = _inputs(seed=15)
        pr3 = DEFAEncoderRunner(
            encoder, QP_FP32, sparse_mode="sparse", enable_sparse_ffn=False
        )
        full = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode="sparse")
        out_pr3 = pr3.forward(features, pos, reference, SHAPES)
        out_full = full.forward(features, pos, reference, SHAPES)
        assert all(not s.sparse_ffn for s in out_pr3.layer_stats)
        np.testing.assert_allclose(out_full.memory, out_pr3.memory, atol=TOL)

    def test_ffn_stage_rejects_mismatched_mask(self):
        encoder = _make_encoder(seed=16, num_layers=1)
        layer = encoder.layers[0]
        x = np.zeros((N_IN, D_MODEL), dtype=np.float32)
        with pytest.raises(ValueError):
            layer.forward_ffn_stage(x, x, keep_mask=np.ones(N_IN - 1, dtype=bool))

    def test_ffn_stage_all_pruned_mask_freezes_everything(self):
        encoder = _make_encoder(seed=17, num_layers=1)
        layer = encoder.layers[0]
        rng = np.random.default_rng(18)
        x = rng.standard_normal((N_IN, D_MODEL)).astype(np.float32)
        attn = rng.standard_normal((N_IN, D_MODEL)).astype(np.float32)
        mask = np.zeros(N_IN, dtype=bool)
        for compact in (False, True):
            out = layer.forward_ffn_stage(x, attn, keep_mask=mask, compact=compact)
            np.testing.assert_array_equal(out, x)

    def test_ffn_stage_single_survivor(self):
        encoder = _make_encoder(seed=19, num_layers=1)
        layer = encoder.layers[0]
        rng = np.random.default_rng(20)
        x = rng.standard_normal((N_IN, D_MODEL)).astype(np.float32)
        attn = rng.standard_normal((N_IN, D_MODEL)).astype(np.float32)
        mask = np.zeros(N_IN, dtype=bool)
        mask[N_IN // 2] = True
        dense_stage = layer.forward_ffn_stage(x, attn)
        out_masked = layer.forward_ffn_stage(x, attn, keep_mask=mask, compact=False)
        out_compact = layer.forward_ffn_stage(x, attn, keep_mask=mask, compact=True)
        np.testing.assert_array_equal(out_masked[~mask], x[~mask])
        np.testing.assert_array_equal(out_compact[~mask], x[~mask])
        np.testing.assert_array_equal(out_masked[mask], dense_stage[mask])
        np.testing.assert_allclose(out_compact[mask], dense_stage[mask], atol=TOL)


class TestQueryAddStage:
    """The pre-attention ``query = x + pos`` add under query pruning (PR 5).

    FWP-pruned pixels never act as queries, so their positional add is dead
    work: the runner computes it only on kept rows in the sparse path and
    zeroes the pruned rows in the masked-dense path.  Both must be
    observation-equivalent to the PR 4 execution (full add for every row) —
    the pruned rows' query values were always masked out downstream — and
    the frozen-row convention must be untouched.
    """

    @staticmethod
    def _pr4_forward(runner, features, pos, reference):
        """The PR 4 encoder loop: full ``x + pos`` for every row."""
        x = np.asarray(features, dtype=np.float32)
        fmap_mask = None
        masks = []
        for layer, defa in zip(runner.encoder.layers, runner.defa_layers):
            query = x + pos
            attn_out = defa.forward_detailed(
                query, reference, x, SHAPES, fmap_mask=fmap_mask
            )
            keep_mask, compact = runner.ffn_stage_plan(fmap_mask, x.shape[0])
            x = layer.forward_ffn_stage(
                x, attn_out.output, keep_mask=keep_mask, compact=compact
            )
            fmap_mask = attn_out.fmap_mask_next
            masks.append(fmap_mask)
        return x, masks

    @pytest.mark.parametrize("sparse_mode", ["dense", "sparse"])
    def test_skipped_query_add_matches_pr4_full_add(self, sparse_mode):
        encoder = _make_encoder(seed=21)
        features, pos, reference = _inputs(seed=22)
        runner = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode=sparse_mode)
        result = runner.forward(features, pos, reference, SHAPES)
        pr4_memory, pr4_masks = self._pr4_forward(runner, features, pos, reference)
        # Zeroing / skipping the pruned rows' adds changes nothing observable:
        # every projection of a pruned row is masked out downstream.
        np.testing.assert_array_equal(result.memory, pr4_memory)
        for got, want in zip(result.fmap_masks, pr4_masks):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("sparse_mode", ["dense", "sparse"])
    def test_frozen_rows_survive_the_query_add_skip(self, sparse_mode):
        """Pruned rows stay frozen at the block input with the add skipped."""
        encoder = _make_encoder(seed=23, num_layers=2)
        features, pos, reference = _inputs(seed=24)
        runner = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode=sparse_mode)
        result = runner.forward(features, pos, reference, SHAPES, collect_details=True)
        mask_into_block2 = result.fmap_masks[0]
        assert 0 < mask_into_block2.sum() < N_IN
        block1_out = result.layer_outputs[0]
        # Reconstruct block 1's stage output (= block 2's input).
        keep_mask, compact = runner.ffn_stage_plan(None, N_IN)
        block2_input = encoder.layers[0].forward_ffn_stage(
            features, block1_out.output, keep_mask=keep_mask, compact=compact
        )
        keep_mask, compact = runner.ffn_stage_plan(mask_into_block2, N_IN)
        block2_out = encoder.layers[1].forward_ffn_stage(
            block2_input,
            result.layer_outputs[1].output,
            keep_mask=keep_mask,
            compact=compact,
        )
        np.testing.assert_array_equal(
            block2_out[~mask_into_block2], block2_input[~mask_into_block2]
        )
        np.testing.assert_allclose(result.memory, block2_out, atol=TOL)

    def test_query_stage_plan_gate(self):
        encoder = _make_encoder(seed=25)
        mask = np.zeros(N_IN, dtype=bool)
        mask[: N_IN // 3] = True
        # No query pruning => no mask, regardless of sparse_mode.
        off = DEFAEncoderRunner(encoder, DEFAConfig(quant_bits=None), sparse_mode="sparse")
        assert off.query_stage_plan(mask, N_IN) == (None, False)
        # Query pruning + forced sparse => compact path.
        on = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode="sparse")
        keep, compact = on.query_stage_plan(mask, N_IN)
        assert compact and keep is not None
        # First block (no mask) always runs the plain add.
        assert on.query_stage_plan(None, N_IN) == (None, False)
        # auto mode keeps tiny inputs dense (N_IN < SPARSE_AUTO_MIN_QUERIES).
        auto = DEFAEncoderRunner(encoder, QP_FP32, sparse_mode="auto")
        keep, compact = auto.query_stage_plan(mask, N_IN)
        assert keep is not None and not compact


class TestIntegerMaskNormalization:
    """Integer/uint8 masks are normalized to bool once at the boundary and
    must flow through the full encoder identically to boolean masks."""

    @pytest.mark.parametrize("dtype", [np.uint8, np.int32])
    def test_integer_masks_through_full_encoder(self, dtype):
        encoder = _make_encoder(seed=26)
        features, pos, reference = _inputs(seed=27)
        runner = DEFAEncoderRunner(encoder, QP_INT12, sparse_mode="sparse")
        want = runner.forward(features, pos, reference, SHAPES)

        # The same loop, but every block boundary receives an integer mask.
        x = np.asarray(features, dtype=np.float32)
        fmap_mask = None
        masks = []
        for layer, defa in zip(runner.encoder.layers, runner.defa_layers):
            int_mask = None if fmap_mask is None else fmap_mask.astype(dtype)
            q_keep, q_compact = runner.query_stage_plan(int_mask, x.shape[0])
            query = runner._build_query(x, pos, q_keep, q_compact, None)
            attn_out = defa.forward_detailed(
                query, reference, x, SHAPES, fmap_mask=int_mask
            )
            keep_mask, compact = runner.ffn_stage_plan(int_mask, x.shape[0])
            x = layer.forward_ffn_stage(
                x, attn_out.output, keep_mask=keep_mask, compact=compact
            )
            fmap_mask = attn_out.fmap_mask_next
            masks.append(fmap_mask)

        np.testing.assert_array_equal(x, want.memory)
        for got, ref_mask in zip(masks, want.fmap_masks):
            np.testing.assert_array_equal(got, ref_mask)

    def test_normalize_mask_contract(self):
        from repro.core.fwp import normalize_mask

        assert normalize_mask(None) is None
        boolean = np.array([True, False, True])
        assert normalize_mask(boolean) is boolean  # no copy for bool masks
        ints = np.array([2, 0, 255], dtype=np.uint8)
        np.testing.assert_array_equal(normalize_mask(ints), [True, False, True])
