"""Tests for the batched execution engine: BatchRunner, TraceCache, --jobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    BatchRunner,
    ParallelExperimentError,
    TraceCache,
    WorkItem,
    defa_forward_fn,
    encoder_forward_fn,
    run_experiments_parallel,
)
from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.experiments.runner import run_experiments
from repro.nn.encoder import DeformableEncoder
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.utils.shapes import LevelShape
from repro.workloads.specs import get_workload
from repro.workloads.traces import trace_cache_key

SHAPES_A = (LevelShape(8, 12), LevelShape(4, 6))
SHAPES_B = (LevelShape(6, 8), LevelShape(3, 4))
D_MODEL = 32


def _item(item_id, shapes, seed):
    rng = np.random.default_rng(seed)
    n_in = sum(s.num_pixels for s in shapes)
    return WorkItem(
        item_id=item_id,
        features=rng.standard_normal((n_in, D_MODEL)).astype(np.float32),
        spatial_shapes=shapes,
    )


def _encoder() -> DeformableEncoder:
    return DeformableEncoder(
        num_layers=2,
        d_model=D_MODEL,
        num_heads=4,
        num_levels=2,
        num_points=2,
        ffn_dim=64,
        rng=0,
    )


class TestWorkItem:
    def test_shape_key_groups_equal_pyramids(self):
        assert _item(0, SHAPES_A, 0).shape_key == _item(1, SHAPES_A, 1).shape_key
        assert _item(0, SHAPES_A, 0).shape_key != _item(1, SHAPES_B, 1).shape_key

    def test_token_mismatch_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WorkItem(0, rng.standard_normal((5, D_MODEL)), SHAPES_A)

    def test_non_2d_features_raise(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WorkItem(0, rng.standard_normal((2, 108, D_MODEL)), SHAPES_A)

    def test_identity_semantics(self):
        """Items are hashable and comparable despite the ndarray field."""
        a = _item(0, SHAPES_A, 0)
        b = _item(0, SHAPES_A, 0)
        assert a in {a} and a != b and a == a
        assert b not in {a}

    def test_features_snapshotted_at_construction(self):
        """The item must hold a private copy: post-construction mutation of
        the caller's array (buffer reuse between submit and execution) cannot
        reach the queued request."""
        rng = np.random.default_rng(0)
        n_in = sum(s.num_pixels for s in SHAPES_A)
        caller_buffer = rng.standard_normal((n_in, D_MODEL)).astype(np.float32)
        item = WorkItem(0, caller_buffer, SHAPES_A)
        snapshot = np.array(item.features)
        caller_buffer[:] = 0.0  # caller recycles its buffer post-submit
        np.testing.assert_array_equal(item.features, snapshot)

    def test_post_submit_mutation_cannot_change_outputs(self):
        """End-to-end: corrupting the submitted array after construction must
        not change what the runner computes."""
        rng = np.random.default_rng(1)
        n_in = sum(s.num_pixels for s in SHAPES_A)
        buffers = [
            rng.standard_normal((n_in, D_MODEL)).astype(np.float32) for _ in range(3)
        ]
        items = [WorkItem(i, buf, SHAPES_A) for i, buf in enumerate(buffers)]
        expected = [buf.copy() for buf in buffers]
        for buf in buffers:
            buf[:] = np.nan  # post-submit corruption
        runner = BatchRunner(lambda batch, shapes: batch.copy(), max_batch_size=2)
        result = runner.run(items)
        for output, want in zip(result.outputs, expected):
            np.testing.assert_array_equal(output, want)

    def test_features_are_read_only(self):
        item = _item(0, SHAPES_A, 0)
        assert not item.features.flags.writeable
        with pytest.raises(ValueError):
            item.features[0, 0] = 1.0

    def test_non_float_dtype_rejected(self):
        n_in = sum(s.num_pixels for s in SHAPES_A)
        with pytest.raises(ValueError, match="floating point"):
            WorkItem(0, np.zeros((n_in, D_MODEL), dtype=np.int32), SHAPES_A)

    def test_float64_converted_to_float_dtype(self):
        rng = np.random.default_rng(2)
        n_in = sum(s.num_pixels for s in SHAPES_A)
        item = WorkItem(0, rng.standard_normal((n_in, D_MODEL)), SHAPES_A)
        assert item.features.dtype == np.float32


class TestBatchRunner:
    def test_groups_and_batches(self):
        items = [
            _item("a0", SHAPES_A, 0),
            _item("b0", SHAPES_B, 1),
            _item("a1", SHAPES_A, 2),
            _item("a2", SHAPES_A, 3),
            _item("b1", SHAPES_B, 4),
        ]
        calls = []

        def forward(batch, shapes):
            calls.append(batch.shape[0])
            return batch  # identity

        runner = BatchRunner(forward, max_batch_size=2)
        result = runner.run(items)
        # 3 same-shape A items -> batches of 2 + 1; 2 B items -> one batch.
        assert sorted(result.stats.batch_sizes) == [1, 2, 2]
        assert result.stats.num_groups == 2
        assert result.stats.num_items == 5
        assert result.stats.num_batches == 3
        assert result.item_ids == ["a0", "b0", "a1", "a2", "b1"]

    def test_outputs_in_submission_order_and_equivalent(self):
        encoder = _encoder()
        items = [
            _item(i, SHAPES_A if i % 2 == 0 else SHAPES_B, seed=i) for i in range(6)
        ]
        runner = BatchRunner(encoder_forward_fn(encoder), max_batch_size=4)
        result = runner.run(items)
        for item, output in zip(items, result.outputs):
            shapes = list(item.spatial_shapes)
            pos = sine_positional_encoding(shapes, D_MODEL)
            reference = make_reference_points(shapes)
            single = encoder.forward(item.features, pos, reference, shapes)
            np.testing.assert_allclose(output, single, atol=1e-5)

    def test_defa_forward_fn_equivalent(self):
        encoder = _encoder()
        runner_defa = DEFAEncoderRunner(encoder, DEFAConfig())
        items = [_item(i, SHAPES_A, seed=10 + i) for i in range(3)]
        engine = BatchRunner(defa_forward_fn(runner_defa), max_batch_size=8)
        result = engine.run(items)
        shapes = list(SHAPES_A)
        pos = sine_positional_encoding(shapes, D_MODEL)
        reference = make_reference_points(shapes)
        for item, output in zip(items, result.outputs):
            single = runner_defa.forward(item.features, pos, reference, shapes)
            np.testing.assert_allclose(output, single.memory, atol=1e-5)

    def test_wrong_forward_batch_raises(self):
        runner = BatchRunner(lambda batch, shapes: batch[:1], max_batch_size=4)
        with pytest.raises(ValueError):
            runner.run([_item(0, SHAPES_A, 0), _item(1, SHAPES_A, 1)])

    def test_invalid_batch_size_raises(self):
        with pytest.raises(ValueError):
            BatchRunner(lambda batch, shapes: batch, max_batch_size=0)

    def test_empty_run(self):
        runner = BatchRunner(lambda batch, shapes: batch)
        result = runner.run([])
        assert result.outputs == [] and result.stats.num_batches == 0


class TestTraceCache:
    def test_hit_and_miss_accounting(self):
        spec = get_workload("deformable_detr", "tiny")
        cache = TraceCache()
        first = cache.get_or_generate(spec, seed=0, num_layers=1)
        again = cache.get_or_generate(spec, seed=0, num_layers=1)
        other = cache.get_or_generate(spec, seed=1, num_layers=1)
        # identical (spec, seed) is never regenerated: the LayerTrace objects
        # are shared, only the list container is fresh per call.
        assert [t is u for t, u in zip(again, first)] == [True]
        assert other[0] is not first[0]
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 2 and stats.entries == 2
        assert stats.requests == 3
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_key_format(self):
        spec = get_workload("deformable_detr", "tiny")
        assert trace_cache_key(spec, seed=3, num_layers=2) == (spec, 3, 2, True)

    def test_key_distinguishes_same_name_different_geometry(self):
        """Two specs with equal names but different resolutions must not share
        a cache entry (the key carries the full frozen spec, not spec.name)."""
        from dataclasses import replace

        spec = get_workload("deformable_detr", "tiny")
        other = replace(spec, image_height=32, image_width=48)
        assert spec.name == other.name
        assert trace_cache_key(spec, seed=0) != trace_cache_key(other, seed=0)

    def test_eviction_bound(self):
        spec = get_workload("deformable_detr", "tiny")
        cache = TraceCache(max_entries=1)
        cache.get_or_generate(spec, seed=0, num_layers=1)
        cache.get_or_generate(spec, seed=1, num_layers=1)
        assert len(cache) == 1
        assert trace_cache_key(spec, seed=1, num_layers=1) in cache
        assert trace_cache_key(spec, seed=0, num_layers=1) not in cache

    def test_lru_eviction_hit_refreshes_recency(self):
        """Eviction at max_entries is least-recently-*used*: a hit on the
        oldest entry must save it from the next eviction, and the hit/miss
        accounting must record the whole sequence."""
        spec = get_workload("deformable_detr", "tiny")
        cache = TraceCache(max_entries=2)
        first = cache.get_or_generate(spec, seed=0, num_layers=1)  # miss
        cache.get_or_generate(spec, seed=1, num_layers=1)  # miss
        # Touch seed=0: it becomes most-recently-used and must survive the
        # eviction triggered by inserting seed=2 (seed=1 is now the LRU).
        again = cache.get_or_generate(spec, seed=0, num_layers=1)  # hit
        assert again[0] is first[0]
        cache.get_or_generate(spec, seed=2, num_layers=1)  # miss, evicts seed=1
        assert len(cache) == 2
        assert trace_cache_key(spec, seed=0, num_layers=1) in cache
        assert trace_cache_key(spec, seed=2, num_layers=1) in cache
        assert trace_cache_key(spec, seed=1, num_layers=1) not in cache
        # The surviving seed=0 entry still hits (no regeneration).
        assert cache.get_or_generate(spec, seed=0, num_layers=1)[0] is first[0]
        stats = cache.stats
        assert stats.hits == 2 and stats.misses == 3 and stats.entries == 2

    def test_caller_mutation_does_not_corrupt_cache(self):
        spec = get_workload("deformable_detr", "tiny")
        cache = TraceCache()
        traces = cache.get_or_generate(spec, seed=0, num_layers=1)
        kept = traces[0]
        traces.clear()  # caller trims its copy
        assert cache.get_or_generate(spec, seed=0, num_layers=1)[0] is kept

    def test_cached_layer_traces_entry_point(self):
        from repro.engine.trace_cache import DEFAULT_TRACE_CACHE
        from repro.workloads import cached_layer_traces

        spec = get_workload("deformable_detr", "tiny")
        before = DEFAULT_TRACE_CACHE.stats
        first = cached_layer_traces(spec, seed=123, num_layers=1)
        again = cached_layer_traces(spec, seed=123, num_layers=1)
        assert again[0] is first[0]
        after = DEFAULT_TRACE_CACHE.stats
        assert after.misses == before.misses + 1
        assert after.hits >= before.hits + 1

    def test_clear(self):
        spec = get_workload("deformable_detr", "tiny")
        cache = TraceCache()
        cache.get_or_generate(spec, seed=0, num_layers=1)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            TraceCache(max_entries=0)


class TestParallelRunner:
    """--jobs execution must be deterministic: identical to the serial runner."""

    IDS = ["fig1b", "table1"]  # analytic experiments, fast enough for a test

    def test_parallel_matches_serial(self):
        serial = run_experiments(self.IDS, verbose=False, jobs=1)
        parallel = run_experiments(self.IDS, verbose=False, jobs=2)
        assert set(serial) == set(parallel)
        for experiment_id in self.IDS:
            assert serial[experiment_id].headers == parallel[experiment_id].headers
            assert serial[experiment_id].rows == parallel[experiment_id].rows
            assert serial[experiment_id].notes == parallel[experiment_id].notes

    def test_run_experiments_parallel_direct(self):
        results = run_experiments_parallel(["fig1b"], jobs=2)
        assert results["fig1b"].experiment_id == "fig1b"

    def test_on_result_callback_fires_per_completion(self):
        seen = []
        results = run_experiments_parallel(
            self.IDS, jobs=2, on_result=lambda eid, result: seen.append(eid)
        )
        assert sorted(seen) == sorted(self.IDS)
        assert set(results) == set(self.IDS)

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            run_experiments(self.IDS, verbose=False, jobs=0)
        with pytest.raises(ValueError):
            run_experiments_parallel(self.IDS, jobs=-1)

    def test_empty_ids(self):
        assert run_experiments_parallel([], jobs=2) == {}


class TestDefaForwardFnStateRestore:
    """Two adapters sharing one runner must not leak modes into each other."""

    def test_adapter_restores_runner_mode_and_backend(self):
        runner = DEFAEncoderRunner(_encoder(), DEFAConfig())
        assert runner.sparse_mode == "auto" and runner.kernel_backend is None
        dense_fn = defa_forward_fn(runner, sparse_mode="dense", backend="reference")
        sparse_fn = defa_forward_fn(runner, sparse_mode="sparse", backend="fused")
        batch = _item(0, SHAPES_A, 0).features[None]
        shapes = list(SHAPES_A)
        dense_first = dense_fn(batch, shapes)
        assert runner.sparse_mode == "auto" and runner.kernel_backend is None
        sparse_fn(batch, shapes)
        assert runner.sparse_mode == "auto" and runner.kernel_backend is None
        # The dense adapter still computes its own mode's result after the
        # sparse adapter ran on the shared runner (no leaked mode).
        np.testing.assert_array_equal(dense_fn(batch, shapes), dense_first)

    def test_adapter_matches_dedicated_runner(self):
        """A mode-pinned adapter on a shared runner must produce exactly what
        a runner permanently set to that mode produces."""
        shared = DEFAEncoderRunner(_encoder(), DEFAConfig())
        dedicated = DEFAEncoderRunner(_encoder(), DEFAConfig())
        dedicated.sparse_mode = "sparse"
        sparse_fn = defa_forward_fn(shared, sparse_mode="sparse")
        other_fn = defa_forward_fn(shared, sparse_mode="dense")
        batch = _item(0, SHAPES_A, 3).features[None]
        shapes = list(SHAPES_A)
        other_fn(batch, shapes)  # perturb the shared runner first
        pos = sine_positional_encoding(shapes, D_MODEL)
        reference = make_reference_points(shapes)
        expected = dedicated.forward_batched(batch, pos, reference, shapes).memory
        np.testing.assert_array_equal(sparse_fn(batch, shapes), expected)

    def test_mode_restored_when_forward_raises(self):
        runner = DEFAEncoderRunner(_encoder(), DEFAConfig())
        adapter = defa_forward_fn(runner, sparse_mode="dense", backend="reference")
        bad_batch = np.zeros((1, 3, D_MODEL), dtype=np.float32)  # token mismatch
        with pytest.raises(Exception):
            adapter(bad_batch, list(SHAPES_A))
        assert runner.sparse_mode == "auto" and runner.kernel_backend is None

    def test_none_keeps_current_mode(self):
        runner = DEFAEncoderRunner(_encoder(), DEFAConfig())
        runner.sparse_mode = "dense"
        adapter = defa_forward_fn(runner)  # no overrides
        adapter(_item(0, SHAPES_A, 0).features[None], list(SHAPES_A))
        assert runner.sparse_mode == "dense"


def _flaky_experiment_worker(experiment_id: str):
    """Top-level (picklable) worker: fails every id starting with 'bad'."""
    if experiment_id.startswith("bad"):
        raise ValueError(f"boom: {experiment_id}")
    return experiment_id.upper()


class TestParallelMultiFailure:
    """Multi-failure runs must report every failed experiment id."""

    def test_all_failures_attached(self):
        ids = ["ok-1", "bad-1", "ok-2", "bad-2", "bad-3"]
        with pytest.raises(ParallelExperimentError) as excinfo:
            run_experiments_parallel(ids, jobs=2, worker=_flaky_experiment_worker)
        error = excinfo.value
        assert set(error.failures) == {"bad-1", "bad-2", "bad-3"}
        for failed_id in ("bad-1", "bad-2", "bad-3"):
            assert failed_id in str(error)
            assert isinstance(error.failures[failed_id], ValueError)
        # The first failing id (input order) is chained as the cause.
        assert error.__cause__ is error.failures["bad-1"]

    def test_completed_results_still_delivered_via_callback(self):
        """A failing sibling must not discard completed results: the
        save-as-you-go callback sees every success."""
        seen = {}
        with pytest.raises(ParallelExperimentError):
            run_experiments_parallel(
                ["ok-1", "bad-1", "ok-2"],
                jobs=2,
                on_result=lambda eid, result: seen.__setitem__(eid, result),
                worker=_flaky_experiment_worker,
            )
        assert seen == {"ok-1": "OK-1", "ok-2": "OK-2"}

    def test_no_failures_returns_results_in_id_order(self):
        results = run_experiments_parallel(
            ["ok-2", "ok-1"], jobs=2, worker=_flaky_experiment_worker
        )
        assert list(results) == ["ok-2", "ok-1"]
        assert results == {"ok-2": "OK-2", "ok-1": "OK-1"}
