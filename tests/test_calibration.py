"""Tests for the host-calibrated dispatch profiles (PR 9).

Covers the profile data model (schema round-trip, validation), the
active-profile registry, the committed-reference-default rule (loading the
committed profile reproduces the hand-tuned dispatch decisions bit for bit —
the PR 9 acceptance criterion), the auto-dispatch boundary semantics pinned
by the path-choice-parity invariant, and a tiny-grid calibration smoke run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.core.pipeline import (
    SPARSE_AUTO_FFN_KEEP_MAX,
    SPARSE_AUTO_FFN_MIN_TOKENS,
    SPARSE_AUTO_MIN_QUERIES,
    SPARSE_AUTO_MIN_TOKENS,
    SPARSE_AUTO_PIXEL_KEEP_MAX,
    SPARSE_AUTO_QUERY_KEEP_MAX,
    use_sparse_rows,
)
from repro.kernels import (
    KERNEL_BACKENDS,
    PROFILE_ENV,
    CalibrationGrid,
    DispatchThresholds,
    ExecutionOptions,
    MachineProfile,
    calibrate,
    get_active_profile,
    reference_profile,
    resolve_profile,
    set_active_profile,
    use_profile,
)
from repro.kernels import calibration
from repro.kernels.calibration import (
    PROFILE_SCHEMA_VERSION,
    REFERENCE_PROFILE_PATH,
    check_reference,
)
from repro.nn.encoder import DeformableEncoder
from repro.nn.grid_sample import (
    SPARSE_AUTO_MIN_SLOTS,
    SPARSE_AUTO_POINT_KEEP_MAX,
    use_sparse_gather,
)
from repro.utils.shapes import LevelShape


@pytest.fixture(autouse=True)
def _restore_active_profile():
    """Every test leaves the process-default profile as it found it."""
    previous = calibration._active_profile
    yield
    calibration._active_profile = previous


def _exact_keep_mask(size: int, kept: int) -> np.ndarray:
    mask = np.zeros(size, dtype=bool)
    mask[:kept] = True
    return mask


class TestDispatchThresholds:
    def test_defaults_are_the_hand_tuned_constants(self):
        """The module constants are derived from the dataclass defaults —
        one source of truth, and the committed values never drift."""
        t = DispatchThresholds()
        assert t.pixel_keep_max == SPARSE_AUTO_PIXEL_KEEP_MAX == 0.85
        assert t.min_tokens == SPARSE_AUTO_MIN_TOKENS == 512
        assert t.query_keep_max == SPARSE_AUTO_QUERY_KEEP_MAX == 0.85
        assert t.min_queries == SPARSE_AUTO_MIN_QUERIES == 512
        assert t.ffn_keep_max == SPARSE_AUTO_FFN_KEEP_MAX == 0.85
        assert t.ffn_min_tokens == SPARSE_AUTO_FFN_MIN_TOKENS == 512
        assert t.point_keep_max == SPARSE_AUTO_POINT_KEEP_MAX == 0.70
        assert t.min_slots == SPARSE_AUTO_MIN_SLOTS == 32768

    def test_validation(self):
        with pytest.raises(ValueError):
            DispatchThresholds(pixel_keep_max=1.5)
        with pytest.raises(ValueError):
            DispatchThresholds(point_keep_max=-0.1)
        with pytest.raises(ValueError):
            DispatchThresholds(min_tokens=-1)
        with pytest.raises(TypeError):
            DispatchThresholds(min_slots=0.5)
        with pytest.raises(TypeError):
            DispatchThresholds(min_queries=True)
        with pytest.raises(TypeError):
            DispatchThresholds(ffn_keep_max="0.5")

    def test_round_trip_rejects_unknown_and_missing_fields(self):
        t = DispatchThresholds(pixel_keep_max=0.6, min_slots=1024)
        assert DispatchThresholds.from_dict(t.to_dict()) == t
        with pytest.raises(ValueError, match="unknown threshold"):
            DispatchThresholds.from_dict({**t.to_dict(), "bogus": 1})
        partial = t.to_dict()
        partial.pop("min_tokens")
        with pytest.raises(ValueError, match="missing threshold"):
            DispatchThresholds.from_dict(partial)


class TestMachineProfile:
    def test_round_trip_and_save_load(self, tmp_path):
        profile = MachineProfile(
            name="test-host",
            thresholds=DispatchThresholds(pixel_keep_max=0.5, min_tokens=256),
            per_backend=(("fused", DispatchThresholds(min_slots=1)),),
            host=(("numpy", np.__version__),),
        )
        assert MachineProfile.from_dict(profile.to_dict()) == profile
        path = profile.save(tmp_path / "p.json")
        assert MachineProfile.load(path) == profile

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineProfile(name="")
        with pytest.raises(ValueError):
            MachineProfile(name="x", schema_version=PROFILE_SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="per_backend names"):
            MachineProfile(name="x", per_backend=(("gpu", DispatchThresholds()),))
        with pytest.raises(ValueError, match="duplicate"):
            MachineProfile(
                name="x",
                per_backend=(
                    ("fused", DispatchThresholds()),
                    ("fused", DispatchThresholds()),
                ),
            )
        with pytest.raises(ValueError, match="unknown profile"):
            MachineProfile.from_dict({**reference_profile().to_dict(), "extra": 1})

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            MachineProfile.load(path)

    def test_thresholds_for_override_and_default(self):
        override = DispatchThresholds(min_tokens=7)
        profile = MachineProfile(name="x", per_backend=(("fused", override),))
        assert profile.thresholds_for("fused") == override
        assert profile.thresholds_for("reference") == profile.thresholds
        assert profile.thresholds_for(None) == profile.thresholds


class TestReferenceProfile:
    """The committed-reference-default rule (acceptance criterion)."""

    def test_committed_file_equals_reference_profile(self):
        assert MachineProfile.load(REFERENCE_PROFILE_PATH) == reference_profile()

    def test_committed_file_is_canonical_json(self):
        """The file is exactly what ``save`` writes (sorted keys, trailing
        newline), so regeneration is diff-stable."""
        text = REFERENCE_PROFILE_PATH.read_text()
        assert text == json.dumps(
            reference_profile().to_dict(), indent=2, sort_keys=True
        ) + "\n"

    def test_check_reference_passes(self):
        assert check_reference() == []

    def test_check_reference_reports_drift(self, tmp_path):
        drifted = MachineProfile(
            name="reference", thresholds=DispatchThresholds(pixel_keep_max=0.2)
        )
        path = drifted.save(tmp_path / "drifted.json")
        failures = check_reference(path)
        assert any("differs from reference_profile" in f for f in failures)
        assert any("dispatch diverged" in f for f in failures)

    @pytest.mark.parametrize("backend_name", KERNEL_BACKENDS + (None,))
    def test_dispatch_parity_with_hand_tuned_constants(self, backend_name):
        """Sweeping representative shapes through ``use_sparse_rows`` /
        ``use_sparse_gather`` both ways — module constants vs. the committed
        profile's thresholds — every decision is identical, per backend."""
        loaded = MachineProfile.load(REFERENCE_PROFILE_PATH)
        thresholds = loaded.thresholds_for(backend_name)
        rng = np.random.default_rng(7)
        for rows in (64, 511, 512, 513, 2048, 4096):
            for keep in (0.05, 0.3, 0.5, 0.7, 0.85, 0.9, 1.0):
                kept = max(1, int(round(rows * keep)))
                mask = np.zeros(rows, dtype=bool)
                mask[rng.permutation(rows)[:kept]] = True
                assert use_sparse_rows(
                    mask, rows, SPARSE_AUTO_PIXEL_KEEP_MAX, SPARSE_AUTO_MIN_TOKENS, "auto"
                ) == use_sparse_rows(
                    mask, rows, thresholds.pixel_keep_max, thresholds.min_tokens, "auto"
                )
                point_mask = mask.reshape(rows, 1, 1, 1)
                for slots in (rows * 4, SPARSE_AUTO_MIN_SLOTS):
                    assert use_sparse_gather(
                        point_mask, slots, "auto"
                    ) == use_sparse_gather(
                        point_mask, slots, "auto", thresholds=thresholds
                    )


class TestBoundarySemantics:
    """Exact-threshold behavior (the path-choice-parity invariant): minimum
    sizes compare ``<`` (exactly at the minimum is sparse-eligible), keep
    ratios compare ``<=`` (exactly at the crossover goes sparse), and the
    batched decision equals the single-image decision at the boundary."""

    def test_min_rows_boundary_is_strict(self):
        keep_max, min_rows = 0.5, 512
        mask = _exact_keep_mask(min_rows, min_rows // 4)
        assert use_sparse_rows(mask, min_rows, keep_max, min_rows, "auto")
        small = _exact_keep_mask(min_rows - 1, (min_rows - 1) // 4)
        assert not use_sparse_rows(small, min_rows - 1, keep_max, min_rows, "auto")

    def test_keep_ratio_boundary_is_inclusive(self):
        rows = 1024
        # Exactly at the crossover: 0.5 keep with keep_max=0.5 goes sparse.
        at = _exact_keep_mask(rows, rows // 2)
        assert use_sparse_rows(at, rows, 0.5, 512, "auto")
        above = _exact_keep_mask(rows, rows // 2 + 1)
        assert not use_sparse_rows(above, rows, 0.5, 512, "auto")

    def test_min_slots_boundary_is_strict(self):
        t = DispatchThresholds(min_slots=256, point_keep_max=0.5)
        mask = _exact_keep_mask(64, 16).reshape(64, 1, 1, 1)
        assert use_sparse_gather(mask, 256, "auto", thresholds=t)
        assert not use_sparse_gather(mask, 255, "auto", thresholds=t)

    def test_point_keep_boundary_is_inclusive(self):
        t = DispatchThresholds(min_slots=1, point_keep_max=0.5)
        at = _exact_keep_mask(64, 32).reshape(64, 1, 1, 1)
        assert use_sparse_gather(at, 256, "auto", thresholds=t)
        above = _exact_keep_mask(64, 33).reshape(64, 1, 1, 1)
        assert not use_sparse_gather(above, 256, "auto", thresholds=t)

    def test_batched_equals_single_at_exact_crossover(self):
        """A calibrated profile whose value lands exactly on a measured keep
        fraction cannot flip batched-vs-single path choice: with every image
        exactly at the crossover, batched (max per-image fraction) and
        single-image dispatch agree — on both rules, sparse side and dense
        side of the boundary."""
        rows, keep_max = 1024, 0.5
        single_at = _exact_keep_mask(rows, rows // 2)
        batched_at = np.stack([single_at, single_at[::-1].copy()])
        assert use_sparse_rows(
            single_at, rows, keep_max, 512, "auto"
        ) == use_sparse_rows(batched_at, rows, keep_max, 512, "auto", batched=True)
        assert use_sparse_rows(batched_at, rows, keep_max, 512, "auto", batched=True)

        t = DispatchThresholds(min_slots=1, point_keep_max=keep_max)
        point_single = single_at.reshape(rows, 1, 1, 1)
        point_batched = batched_at.reshape(2, rows, 1, 1, 1)
        assert use_sparse_gather(
            point_single, rows * 4, "auto", thresholds=t
        ) == use_sparse_gather(
            point_batched, rows * 4, "auto", batched=True, thresholds=t
        )

        # One image just above the crossover drags the whole batch dense —
        # exactly what each of its images alone would have decided is what
        # the strictest image decides.
        above = _exact_keep_mask(rows, rows // 2 + 1)
        mixed = np.stack([single_at, above])
        assert not use_sparse_rows(mixed, rows, keep_max, 512, "auto", batched=True)
        assert not use_sparse_gather(
            mixed.reshape(2, rows, 1, 1, 1), rows * 4, "auto", batched=True, thresholds=t
        )


class TestActiveProfileRegistry:
    def test_default_is_reference(self):
        calibration._active_profile = None
        assert get_active_profile() == reference_profile()

    def test_env_variable_seeds_the_default(self, tmp_path, monkeypatch):
        profile = MachineProfile(name="from-env", thresholds=DispatchThresholds(min_tokens=9))
        path = profile.save(tmp_path / "env.json")
        monkeypatch.setenv(PROFILE_ENV, str(path))
        calibration._active_profile = None
        assert get_active_profile() == profile
        monkeypatch.setenv(PROFILE_ENV, "reference")
        calibration._active_profile = None
        assert get_active_profile() == reference_profile()

    def test_set_and_reset(self):
        custom = MachineProfile(name="custom")
        assert set_active_profile(custom) is custom
        assert get_active_profile() is custom
        calibration._active_profile = None
        assert set_active_profile(None) == reference_profile()

    def test_use_profile_restores(self):
        set_active_profile(None)
        before = get_active_profile()
        custom = MachineProfile(name="scoped")
        with use_profile(custom) as active:
            assert active is custom
            assert get_active_profile() is custom
        assert get_active_profile() == before

    def test_resolve_profile_rules(self, tmp_path):
        custom = MachineProfile(name="direct")
        assert resolve_profile(custom) is custom
        assert resolve_profile("reference") == reference_profile()
        path = custom.save(tmp_path / "c.json")
        assert resolve_profile(str(path)) == custom
        set_active_profile(custom)
        assert resolve_profile(None) is custom
        with pytest.raises(TypeError):
            resolve_profile(42)


class TestProfileThreading:
    """machine_profile through ExecutionOptions and the runner."""

    def test_execution_options_validates_the_field(self):
        assert ExecutionOptions(machine_profile="reference").machine_profile == "reference"
        assert ExecutionOptions(machine_profile=MachineProfile(name="x"))
        with pytest.raises(TypeError, match="machine_profile"):
            ExecutionOptions(machine_profile=42)

    def _runner(self, profile=None):
        encoder = DeformableEncoder(
            num_layers=1, d_model=32, num_heads=2, num_levels=2,
            num_points=2, ffn_dim=64, rng=0,
        )
        options = ExecutionOptions(machine_profile=profile)
        return DEFAEncoderRunner(
            encoder, DEFAConfig(enable_query_pruning=True), options
        )

    def test_runner_resolves_profile_at_construction(self):
        runner = self._runner("reference")
        assert runner.machine_profile == reference_profile()
        assert runner.plan_stats()["profile"] == "reference"
        for layer in runner.defa_layers:
            assert layer.machine_profile == reference_profile()

    def test_profile_moves_stage_dispatch(self):
        """A profile with an unreachable min size pins the query/FFN stages
        dense where the reference profile compacts them."""
        mask = _exact_keep_mask(2048, 512)
        loose = self._runner(reference_profile())
        _, compact = loose.query_stage_plan(mask, 2048)
        assert compact
        _, ffn_compact = loose.ffn_stage_plan(mask, 2048)
        assert ffn_compact

        strict = self._runner(
            MachineProfile(name="strict", thresholds=DispatchThresholds(
                min_queries=1 << 20, ffn_min_tokens=1 << 20,
            ))
        )
        _, compact = strict.query_stage_plan(mask, 2048)
        assert not compact
        _, ffn_compact = strict.ffn_stage_plan(mask, 2048)
        assert not ffn_compact

    def test_per_backend_override_selected_by_resolved_backend(self):
        backend = "fused"
        override = DispatchThresholds(min_queries=1 << 20, ffn_min_tokens=1 << 20)
        profile = MachineProfile(name="pb", per_backend=((backend, override),))
        runner = self._runner(profile)
        runner.kernel_backend = backend
        mask = _exact_keep_mask(2048, 512)
        _, compact = runner.query_stage_plan(mask, 2048)
        assert not compact
        runner.kernel_backend = "reference"  # no override -> machine default
        _, compact = runner.query_stage_plan(mask, 2048)
        assert compact

    def test_forward_detailed_rejects_per_call_profile(self):
        runner = self._runner()
        attn = runner.defa_layers[0]
        shapes = [LevelShape(2, 2), LevelShape(2, 2)]
        with pytest.raises(ValueError, match="machine_profile"):
            attn.forward_detailed(
                np.zeros((4, 32), dtype=np.float32),
                np.zeros((4, 2, 2), dtype=np.float32),
                np.zeros((8, 32), dtype=np.float32),
                shapes,
                options=ExecutionOptions(machine_profile="reference"),
            )

    def test_defa_forward_fn_rejects_per_adapter_profile(self):
        from repro.engine.batching import defa_forward_fn

        runner = self._runner()
        with pytest.raises(ValueError, match="machine_profile"):
            defa_forward_fn(runner, ExecutionOptions(machine_profile="reference"))


class TestCalibrationSweep:
    def test_grid_validation(self):
        with pytest.raises(ValueError):
            CalibrationGrid(keep_ratios=())
        with pytest.raises(ValueError):
            CalibrationGrid(keep_ratios=(0.9, 0.3))
        with pytest.raises(ValueError):
            CalibrationGrid(keep_ratios=(0.0, 0.5))
        with pytest.raises(ValueError):
            CalibrationGrid(token_counts=(64, 32))
        with pytest.raises(ValueError):
            CalibrationGrid(repeats=0)

    def test_fit_crossover(self):
        sweep = {
            128: {0.3: (1.0, 2.0), 0.9: (1.0, 3.0)},
            1024: {0.3: (3.0, 1.0), 0.9: (3.0, 4.0)},
        }
        keep_max, min_size = calibration._fit_crossover(sweep, 0.85, 512)
        assert keep_max == 0.3
        assert min_size == 1024
        never_wins = {128: {0.3: (1.0, 2.0)}, 1024: {0.3: (1.0, 2.0)}}
        assert calibration._fit_crossover(never_wins, 0.85, 512) == (0.85, 512)

    def test_tiny_grid_calibrate_smoke(self):
        profile = calibrate(CalibrationGrid.tiny(), name="smoke")
        assert profile.name == "smoke"
        assert profile.per_backend  # at least one backend calibrated
        for backend_name, _ in profile.per_backend:
            assert backend_name in KERNEL_BACKENDS
        # The fitted profile is schema-valid and round-trips.
        assert MachineProfile.from_dict(profile.to_dict()) == profile

    def test_cli_calibrate_and_check(self, tmp_path, capsys):
        out = tmp_path / "host.json"
        assert calibration.main(["--grid", "tiny", "--output", str(out)]) == 0
        loaded = MachineProfile.load(out)
        assert MachineProfile.from_dict(loaded.to_dict()) == loaded
        assert calibration.main(["--check-reference"]) == 0
        assert "reference profile OK" in capsys.readouterr().out
