"""Golden equivalence and edge-case tests for the sparse execution path.

The sparse kernels compact FWP/PAP masks into gather lists *before* touching
memory; the dense kernels simulate the same pruning by multiplying with
zeros.  Both must agree:

* to 1e-5 on unquantized configs (pure float32 paths, single and batched);
* to a few INT12 quantization steps on quantized configs — the ~1e-7 float32
  summation-order difference between the kernels can flip a rounding decision
  in the dynamically scaled output projection, which is one quantization step
  (~1e-3), not an error.

Edge cases from the PR checklist: all-pruned fmap mask, single-survivor fmap
mask, an all-pruned point mask for one (head, level), and int/bool fmap-mask
dtype coercion — on both paths, with sane :class:`DEFALayerStats`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.core.fwp import apply_fmap_mask
from repro.core.pipeline import SPARSE_MODES, DEFAAttention
from repro.kernels import COMPILED_AVAILABLE
from repro.nn.encoder import DeformableEncoder
from repro.nn.grid_sample import (
    ms_deform_attn_core,
    ms_deform_attn_core_batched,
    ms_deform_attn_core_sparse,
    ms_deform_attn_core_sparse_batched,
    ms_deform_attn_from_trace,
    ms_deform_attn_from_trace_batched,
    ms_deform_attn_sparse_from_trace,
    ms_deform_attn_sparse_from_trace_batched,
    multi_scale_neighbors,
    multi_scale_neighbors_batched,
    use_sparse_gather,
)
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.quant.qmodules import quantize_linear
from repro.nn.modules import Linear
from repro.utils.shapes import LevelShape

TOL = 1e-5
"""Strict float32-path equivalence tolerance (unquantized configs)."""

_BACKEND_PARAMS = ["reference", "fused"] + (
    ["compiled"] if COMPILED_AVAILABLE else []
)


@pytest.fixture(autouse=True, params=_BACKEND_PARAMS)
def kernel_backend(request):
    """Run every golden-equivalence test under every kernel backend.

    The backends are bit-identical by construction, so each test's
    tolerances must hold identically under any of them; parametrizing the
    whole module keeps the fused backend (the production default), the PR 4
    reference path and — where its extension is built — the PR 7 compiled C
    path covered by the same assertions.
    """
    from repro.kernels import use_backend

    with use_backend(request.param):
        yield request.param

QUANT_TOL = 5e-3
"""Quantized-config tolerance: a few INT12 steps (see module docstring)."""

SHAPES = [LevelShape(8, 12), LevelShape(4, 6), LevelShape(2, 3)]
N_IN = sum(s.num_pixels for s in SHAPES)
N_Q, N_H, N_L, N_P, D_H = 29, 4, 3, 2, 8


def _kernel_inputs(seed=0, batch=None):
    rng = np.random.default_rng(seed)
    lead = () if batch is None else (batch,)
    value = rng.standard_normal(lead + (N_IN, N_H, D_H)).astype(np.float32)
    locs = rng.uniform(-0.15, 1.15, lead + (N_Q, N_H, N_L, N_P, 2)).astype(np.float32)
    attn = rng.uniform(0.0, 1.0, lead + (N_Q, N_H, N_L, N_P)).astype(np.float32)
    mask = rng.uniform(0.0, 1.0, attn.shape) < 0.35
    return value, locs, attn, mask


class TestSparseKernels:
    def test_from_trace_matches_dense(self):
        value, locs, attn, mask = _kernel_inputs()
        trace = multi_scale_neighbors(SHAPES, locs)
        dense = ms_deform_attn_from_trace(value, trace, attn, point_mask=mask)
        sparse = ms_deform_attn_sparse_from_trace(value, trace, attn, point_mask=mask)
        np.testing.assert_allclose(sparse, dense, atol=TOL)

    def test_from_trace_matches_dense_batched(self):
        value, locs, attn, mask = _kernel_inputs(seed=1, batch=3)
        trace = multi_scale_neighbors_batched(SHAPES, locs)
        dense = ms_deform_attn_from_trace_batched(value, trace, attn, point_mask=mask)
        sparse = ms_deform_attn_sparse_from_trace_batched(value, trace, attn, point_mask=mask)
        np.testing.assert_allclose(sparse, dense, atol=TOL)
        # Batched sparse equals per-image sparse exactly (per-image compaction).
        for b in range(3):
            single = ms_deform_attn_sparse_from_trace(
                value[b], trace.image(b), attn[b], point_mask=mask[b]
            )
            np.testing.assert_allclose(sparse[b], single, atol=TOL)

    def test_core_sparse_matches_dense(self):
        value, locs, attn, mask = _kernel_inputs(seed=2)
        dense = ms_deform_attn_core(value, SHAPES, locs, attn, point_mask=mask)
        sparse = ms_deform_attn_core_sparse(value, SHAPES, locs, attn, point_mask=mask)
        np.testing.assert_allclose(sparse, dense, atol=TOL)

    def test_core_sparse_matches_dense_batched(self):
        value, locs, attn, mask = _kernel_inputs(seed=3, batch=2)
        dense = ms_deform_attn_core_batched(value, SHAPES, locs, attn, point_mask=mask)
        sparse = ms_deform_attn_core_sparse_batched(value, SHAPES, locs, attn, point_mask=mask)
        np.testing.assert_allclose(sparse, dense, atol=TOL)

    def test_no_mask_means_all_points(self):
        value, locs, attn, _ = _kernel_inputs(seed=4)
        trace = multi_scale_neighbors(SHAPES, locs)
        dense = ms_deform_attn_from_trace(value, trace, attn)
        sparse = ms_deform_attn_sparse_from_trace(value, trace, attn)
        np.testing.assert_allclose(sparse, dense, atol=TOL)
        core_sparse = ms_deform_attn_core_sparse(value, SHAPES, locs, attn)
        np.testing.assert_allclose(core_sparse, dense, atol=1e-4)

    def test_all_pruned_point_mask_yields_zeros(self):
        value, locs, attn, _ = _kernel_inputs(seed=5)
        mask = np.zeros((N_Q, N_H, N_L, N_P), dtype=bool)
        trace = multi_scale_neighbors(SHAPES, locs)
        assert np.all(ms_deform_attn_sparse_from_trace(value, trace, attn, point_mask=mask) == 0)
        assert np.all(ms_deform_attn_core_sparse(value, SHAPES, locs, attn, point_mask=mask) == 0)

    def test_all_pruned_for_one_head_level(self):
        """Pruning every point of one (head, level) pair matches dense."""
        value, locs, attn, mask = _kernel_inputs(seed=6)
        mask = mask.copy()
        mask[:, 2, 1, :] = False  # head 2, level 1: fully pruned
        mask[:, 0, :, :] = True  # head 0: fully kept (contrast case)
        trace = multi_scale_neighbors(SHAPES, locs)
        dense = ms_deform_attn_from_trace(value, trace, attn, point_mask=mask)
        sparse = ms_deform_attn_sparse_from_trace(value, trace, attn, point_mask=mask)
        np.testing.assert_allclose(sparse, dense, atol=TOL)
        core = ms_deform_attn_core_sparse(value, SHAPES, locs, attn, point_mask=mask)
        np.testing.assert_allclose(core, dense, atol=1e-4)

    def test_single_survivor_point(self):
        value, locs, attn, _ = _kernel_inputs(seed=7)
        mask = np.zeros((N_Q, N_H, N_L, N_P), dtype=bool)
        mask[11, 1, 0, 1] = True
        trace = multi_scale_neighbors(SHAPES, locs)
        dense = ms_deform_attn_from_trace(value, trace, attn, point_mask=mask)
        sparse = ms_deform_attn_sparse_from_trace(value, trace, attn, point_mask=mask)
        np.testing.assert_allclose(sparse, dense, atol=TOL)
        # Only the (query 11, head 1) slot may be non-zero.
        out = sparse.reshape(N_Q, N_H, D_H)
        assert np.any(out[11, 1] != 0)
        zeroed = out.copy()
        zeroed[11, 1] = 0
        assert np.all(zeroed == 0)

    def test_use_sparse_gather_dispatch(self):
        mask = np.zeros((4, 2, 2, 2), dtype=bool)
        assert use_sparse_gather(mask, 10**9, "sparse")
        assert not use_sparse_gather(mask, 10**9, "dense")
        assert not use_sparse_gather(None, 10**9, "auto")  # no mask -> dense
        assert not use_sparse_gather(mask, 100, "auto")  # tiny input -> dense
        assert use_sparse_gather(mask, 10**9, "auto")  # large + heavy pruning
        assert not use_sparse_gather(np.ones_like(mask), 10**9, "auto")  # no pruning
        with pytest.raises(ValueError):
            use_sparse_gather(mask, 100, "blocked")

    def test_use_sparse_gather_batched_uses_max_per_image_fraction(self):
        """A batch goes sparse only when every image alone would (batched
        decisions must match the per-image serial runs wherever possible)."""
        sparse_image = np.zeros((1, 4, 2, 2, 2), dtype=bool)  # keep 0%
        dense_image = np.ones((1, 4, 2, 2, 2), dtype=bool)  # keep 100%
        mixed = np.concatenate([sparse_image, dense_image])
        assert use_sparse_gather(sparse_image, 10**9, "auto", batched=True)
        assert not use_sparse_gather(dense_image, 10**9, "auto", batched=True)
        # One dense-leaning image forces the whole batch dense, even though
        # the aggregate keep fraction (0.5) is below the threshold.
        assert not use_sparse_gather(mixed, 10**9, "auto", batched=True)


class TestApplyFmapMask:
    def test_all_true_mask_skips_the_copy(self):
        value = np.ones((N_IN, 4), dtype=np.float32)
        out = apply_fmap_mask(value, np.ones(N_IN, dtype=bool))
        assert out is value  # documented: no copy when nothing is pruned

    def test_int_mask_is_coerced(self):
        value = np.ones((N_IN, 4), dtype=np.float32)
        mask = np.ones(N_IN, dtype=np.int64)
        mask[:5] = 0
        out = apply_fmap_mask(value, mask)
        assert out is not value
        assert np.all(out[:5] == 0) and np.all(out[5:] == 1)


def _defa_inputs(seed=0, batch=None):
    rng = np.random.default_rng(seed)
    d_model = N_H * D_H
    lead = () if batch is None else (batch,)
    features = rng.standard_normal(lead + (N_IN, d_model)).astype(np.float32)
    pos = sine_positional_encoding(SHAPES, d_model)
    reference = make_reference_points(SHAPES)
    return features, features + pos, reference


def _make_defa(config, sparse_mode, seed=0):
    from repro.nn.msdeform_attn import MSDeformAttn

    attn = MSDeformAttn(
        d_model=N_H * D_H, num_heads=N_H, num_levels=N_L, num_points=N_P, rng=seed
    )
    return DEFAAttention(attn, config, sparse_mode=sparse_mode)


FP32_CONFIG = DEFAConfig(quant_bits=None)
INT12_CONFIG = DEFAConfig()


class TestDEFASparseEquivalence:
    @pytest.mark.parametrize("mask_kind", ["generated", "all_pruned", "single_survivor", "int_dtype"])
    def test_single_image_paths_agree(self, mask_kind):
        features, query, reference = _defa_inputs(seed=10)
        dense = _make_defa(FP32_CONFIG, "dense", seed=3)
        sparse = _make_defa(FP32_CONFIG, "sparse", seed=3)
        if mask_kind == "generated":
            fmap_mask = dense.forward_detailed(query, reference, features, SHAPES).fmap_mask_next
        elif mask_kind == "all_pruned":
            fmap_mask = np.zeros(N_IN, dtype=bool)
        elif mask_kind == "single_survivor":
            fmap_mask = np.zeros(N_IN, dtype=bool)
            fmap_mask[N_IN // 2] = True
        else:  # int dtype coercion
            fmap_mask = np.ones(N_IN, dtype=np.int32)
            fmap_mask[::3] = 0
        out_dense = dense.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        out_sparse = sparse.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        np.testing.assert_allclose(out_sparse.output, out_dense.output, atol=TOL)
        np.testing.assert_array_equal(out_sparse.fmap_mask_next, out_dense.fmap_mask_next)
        np.testing.assert_array_equal(out_sparse.point_mask, out_dense.point_mask)
        # Stats agree except for the path markers.
        expected_kept = int(np.count_nonzero(np.asarray(fmap_mask, dtype=bool)))
        for out, is_sparse in ((out_dense, False), (out_sparse, True)):
            stats = out.stats
            assert stats.pixels_kept == expected_kept
            assert stats.mask_applied
            assert 0.0 <= stats.pixel_reduction <= 1.0
            assert stats.points_kept <= stats.points_total
            assert stats.sparse_projection == is_sparse
            assert stats.sparse_gather == is_sparse

    @pytest.mark.parametrize("mask_kind", ["generated", "all_pruned", "int_dtype"])
    def test_batched_paths_agree(self, mask_kind):
        batch = 3
        features, query, reference = _defa_inputs(seed=11, batch=batch)
        dense = _make_defa(FP32_CONFIG, "dense", seed=4)
        sparse = _make_defa(FP32_CONFIG, "sparse", seed=4)
        if mask_kind == "generated":
            fmap_mask = dense.forward_detailed(query, reference, features, SHAPES).fmap_mask_next
        elif mask_kind == "all_pruned":
            fmap_mask = np.zeros((batch, N_IN), dtype=bool)
        else:
            rng = np.random.default_rng(5)
            fmap_mask = (rng.uniform(0, 1, (batch, N_IN)) < 0.6).astype(np.int8)
        out_dense = dense.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        out_sparse = sparse.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        np.testing.assert_allclose(out_sparse.output, out_dense.output, atol=TOL)
        for b in range(batch):
            img_d, img_s = out_dense.images[b], out_sparse.images[b]
            np.testing.assert_array_equal(img_s.fmap_mask_next, img_d.fmap_mask_next)
            np.testing.assert_array_equal(img_s.point_mask, img_d.point_mask)
            assert img_s.stats.pixels_kept == img_d.stats.pixels_kept
            assert img_s.stats.sparse_projection and img_s.stats.sparse_gather
            assert not img_d.stats.sparse_projection and not img_d.stats.sparse_gather

    def test_batched_sparse_matches_single_sparse(self):
        """Sparse batched execution equals the per-image sparse loop."""
        batch = 3
        features, query, reference = _defa_inputs(seed=12, batch=batch)
        sparse = _make_defa(FP32_CONFIG, "sparse", seed=6)
        first = sparse.forward_detailed(query, reference, features, SHAPES)
        fmap_mask = first.fmap_mask_next
        batched = sparse.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        for b in range(batch):
            single = sparse.forward_detailed(
                query[b], reference, features[b], SHAPES, fmap_mask=fmap_mask[b]
            )
            np.testing.assert_allclose(batched.output[b], single.output, atol=TOL)
            np.testing.assert_array_equal(batched.images[b].fmap_mask_next, single.fmap_mask_next)

    def test_quantized_config_agrees_within_quant_steps(self):
        """INT12 configs: sparse/dense drift is bounded by quantization steps.

        The compacted kernels reorder float32 summation, which can flip a
        rounding decision inside the dynamically scaled output projection —
        one INT12 step, not an equivalence failure.  Projection outputs
        themselves quantize identically (same scales), asserted separately in
        TestQuantizedRows.
        """
        features, query, reference = _defa_inputs(seed=13)
        dense = _make_defa(INT12_CONFIG, "dense", seed=7)
        sparse = _make_defa(INT12_CONFIG, "sparse", seed=7)
        fmap_mask = dense.forward_detailed(query, reference, features, SHAPES).fmap_mask_next
        out_dense = dense.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        out_sparse = sparse.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        np.testing.assert_allclose(out_sparse.output, out_dense.output, atol=QUANT_TOL)

    def test_invalid_sparse_mode_rejected(self):
        with pytest.raises(ValueError):
            _make_defa(FP32_CONFIG, "fast")


class TestQuantizedRows:
    def test_forward_rows_matches_forward(self):
        rng = np.random.default_rng(0)
        linear = Linear(16, 12, rng=1)
        qlinear = quantize_linear(linear, 12)
        x = rng.standard_normal((50, 16)).astype(np.float32)
        rows = np.array([0, 3, 17, 49])
        np.testing.assert_allclose(
            qlinear.forward_rows(x, rows), qlinear.forward(x)[rows], atol=1e-6
        )

    def test_forward_rows_batched_matches_forward_batched(self):
        rng = np.random.default_rng(1)
        linear = Linear(16, 12, rng=2)
        qlinear = quantize_linear(linear, 12)
        x = rng.standard_normal((3, 40, 16)).astype(np.float32)
        flat_rows = np.array([0, 39, 40, 85, 119])  # rows from every image
        expected = qlinear.forward_batched(x).reshape(120, 12)[flat_rows]
        np.testing.assert_allclose(qlinear.forward_rows_batched(x, flat_rows), expected, atol=1e-6)


class TestSparseEncoderRunner:
    def test_runner_sparse_matches_dense(self):
        encoder = DeformableEncoder(
            num_layers=2,
            d_model=N_H * D_H,
            num_heads=N_H,
            num_levels=N_L,
            num_points=N_P,
            ffn_dim=48,
            rng=0,
        )
        features, _, reference = _defa_inputs(seed=14)
        pos = sine_positional_encoding(SHAPES, N_H * D_H)
        dense_runner = DEFAEncoderRunner(encoder, FP32_CONFIG, sparse_mode="dense")
        sparse_runner = DEFAEncoderRunner(encoder, FP32_CONFIG, sparse_mode="sparse")
        out_dense = dense_runner.forward(features, pos, reference, SHAPES)
        out_sparse = sparse_runner.forward(features, pos, reference, SHAPES)
        np.testing.assert_allclose(out_sparse.memory, out_dense.memory, atol=TOL)
        # First-block convention: no incoming mask => the first block never
        # runs the compacted projection even in forced sparse mode...
        assert not out_sparse.layer_stats[0].sparse_projection
        # ...but the second block receives the generated mask and does.
        assert out_sparse.layer_stats[1].sparse_projection
        assert not any(s.sparse_projection for s in out_dense.layer_stats)

    def test_sparse_mode_setter_propagates(self):
        encoder = DeformableEncoder(
            num_layers=2,
            d_model=N_H * D_H,
            num_heads=N_H,
            num_levels=N_L,
            num_points=N_P,
            ffn_dim=48,
            rng=0,
        )
        runner = DEFAEncoderRunner(encoder, FP32_CONFIG)
        assert runner.sparse_mode == "auto"
        runner.sparse_mode = "sparse"
        assert all(layer.sparse_mode == "sparse" for layer in runner.defa_layers)
        with pytest.raises(ValueError):
            runner.sparse_mode = "bogus"
        assert "auto" in SPARSE_MODES


class TestKernelTimings:
    def test_nested_collectors_record_independently(self):
        from repro.utils.timing import collect_kernel_timings, kernel_section

        with collect_kernel_timings() as outer:
            with collect_kernel_timings() as inner:
                with kernel_section("a"):
                    pass
            with kernel_section("b"):
                pass
        assert set(inner.seconds) == {"a"}
        assert set(outer.seconds) == {"a", "b"}
        assert outer.calls == {"a": 1, "b": 1}


class TestSparseModeAuto:
    def test_auto_is_dense_on_tiny_inputs(self):
        """Below the auto thresholds, tiny inputs keep the dense kernels."""
        features, query, reference = _defa_inputs(seed=15)
        auto = _make_defa(FP32_CONFIG, "auto", seed=8)
        mask = np.zeros(N_IN, dtype=bool)
        mask[: N_IN // 2] = True
        out = auto.forward_detailed(query, reference, features, SHAPES, fmap_mask=mask)
        assert not out.stats.sparse_projection  # N_IN < SPARSE_AUTO_MIN_TOKENS
        assert not out.stats.sparse_gather  # slots < SPARSE_AUTO_MIN_SLOTS
        assert not out.stats.sparse_neighbors
        assert not out.stats.sparse_query  # N_q < SPARSE_AUTO_MIN_QUERIES


QP_FP32 = DEFAConfig(quant_bits=None, enable_query_pruning=True)
QP_INT12 = DEFAConfig(enable_query_pruning=True)


class TestQueryPruning:
    """Sparse execution v2: FWP-pruned pixels stop acting as queries.

    The dense path zeroes the pruned queries' rows, the sparse path skips
    their offset/attention/output projections via row compaction — both
    implement the same semantics and must agree to 1e-5 in fp32 (a few INT12
    steps when quantized), with identical masks and stats.
    """

    @pytest.mark.parametrize("mask_kind", ["generated", "all_pruned", "single_survivor"])
    def test_single_image_paths_agree(self, mask_kind):
        features, query, reference = _defa_inputs(seed=20)
        dense = _make_defa(QP_FP32, "dense", seed=9)
        sparse = _make_defa(QP_FP32, "sparse", seed=9)
        if mask_kind == "generated":
            fmap_mask = dense.forward_detailed(query, reference, features, SHAPES).fmap_mask_next
        elif mask_kind == "all_pruned":
            fmap_mask = np.zeros(N_IN, dtype=bool)
        else:
            fmap_mask = np.zeros(N_IN, dtype=bool)
            fmap_mask[N_IN // 3] = True
        out_dense = dense.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        out_sparse = sparse.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        np.testing.assert_allclose(out_sparse.output, out_dense.output, atol=TOL)
        np.testing.assert_array_equal(out_sparse.point_mask, out_dense.point_mask)
        np.testing.assert_allclose(
            out_sparse.attention_weights, out_dense.attention_weights, atol=TOL
        )
        np.testing.assert_allclose(
            out_sparse.sampling_locations, out_dense.sampling_locations, atol=TOL
        )
        np.testing.assert_array_equal(out_sparse.fmap_mask_next, out_dense.fmap_mask_next)
        assert out_sparse.stats.sparse_query and out_sparse.stats.sparse_neighbors
        assert not out_dense.stats.sparse_query
        assert (
            out_sparse.stats.offset_clipping_fraction
            == out_dense.stats.offset_clipping_fraction
        )
        assert out_sparse.stats.points_kept == out_dense.stats.points_kept

    def test_pruned_query_rows_are_the_output_bias(self):
        """A pruned pixel's block output row is exactly the output-proj bias."""
        from repro.nn.msdeform_attn import MSDeformAttn
        from repro.core.pipeline import DEFAAttention

        attn = MSDeformAttn(
            d_model=N_H * D_H, num_heads=N_H, num_levels=N_L, num_points=N_P, rng=10
        )
        # A non-zero bias makes the check non-trivial (Linear inits bias to 0).
        attn.output_proj.bias = (
            np.random.default_rng(0).standard_normal(N_H * D_H).astype(np.float32)
        )
        defa = DEFAAttention(attn, QP_FP32, sparse_mode="sparse")
        features, query, reference = _defa_inputs(seed=21)
        fmap_mask = np.zeros(N_IN, dtype=bool)
        fmap_mask[::2] = True
        out = defa.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        bias = attn.output_proj.bias
        expected = np.broadcast_to(bias, out.output[~fmap_mask].shape)
        np.testing.assert_allclose(out.output[~fmap_mask], expected, atol=1e-6)
        # The dense path produces the same rows (zero head outputs + bias).
        dense = DEFAAttention(attn, QP_FP32, sparse_mode="dense")
        out_dense = dense.forward_detailed(
            query, reference, features, SHAPES, fmap_mask=fmap_mask
        )
        np.testing.assert_allclose(out_dense.output[~fmap_mask], expected, atol=1e-6)
        # Pruned queries contribute no points and no sampled frequency.
        assert not out.point_mask[~fmap_mask].any()

    def test_points_of_pruned_queries_are_pruned(self):
        """points_kept counts only the points of surviving queries."""
        features, query, reference = _defa_inputs(seed=22)
        defa = _make_defa(QP_FP32, "dense", seed=11)
        no_qp = _make_defa(FP32_CONFIG, "dense", seed=11)
        fmap_mask = np.zeros(N_IN, dtype=bool)
        fmap_mask[: N_IN // 2] = True
        with_qp = defa.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        without = no_qp.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        assert with_qp.stats.points_kept < without.stats.points_kept
        np.testing.assert_array_equal(
            with_qp.point_mask[fmap_mask], without.point_mask[fmap_mask]
        )

    @pytest.mark.parametrize("config, tol", [(QP_FP32, TOL), (QP_INT12, QUANT_TOL)])
    def test_batched_paths_agree_and_match_single(self, config, tol):
        batch = 3
        features, query, reference = _defa_inputs(seed=23, batch=batch)
        dense = _make_defa(config, "dense", seed=12)
        sparse = _make_defa(config, "sparse", seed=12)
        fmap_mask = dense.forward_detailed(query, reference, features, SHAPES).fmap_mask_next
        out_dense = dense.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        out_sparse = sparse.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        np.testing.assert_allclose(out_sparse.output, out_dense.output, atol=tol)
        for b in range(batch):
            img_s = out_sparse.images[b]
            assert img_s.stats.sparse_query
            single = sparse.forward_detailed(
                query[b], reference, features[b], SHAPES, fmap_mask=fmap_mask[b]
            )
            np.testing.assert_allclose(out_sparse.output[b], single.output, atol=tol)
            np.testing.assert_array_equal(img_s.point_mask, single.point_mask)
            np.testing.assert_array_equal(img_s.fmap_mask_next, single.fmap_mask_next)

    def test_default_config_leaves_queries_alone(self):
        """enable_query_pruning defaults off: masked blocks keep every query."""
        features, query, reference = _defa_inputs(seed=24)
        defa = _make_defa(FP32_CONFIG, "sparse", seed=13)
        fmap_mask = np.zeros(N_IN, dtype=bool)
        fmap_mask[: N_IN // 2] = True
        out = defa.forward_detailed(query, reference, features, SHAPES, fmap_mask=fmap_mask)
        assert not out.stats.sparse_query
        # Pruned pixels still act as queries: their points survive PAP.
        assert out.point_mask[~fmap_mask].any()


class TestCompactTraceInPipeline:
    def test_sparse_output_records_compact_trace_and_materializes(self):
        from repro.nn.grid_sample import CompactSamplingTrace, SamplingTrace

        features, query, reference = _defa_inputs(seed=25)
        sparse = _make_defa(FP32_CONFIG, "sparse", seed=14)
        dense = _make_defa(FP32_CONFIG, "dense", seed=14)
        out_s = sparse.forward_detailed(query, reference, features, SHAPES)
        out_d = dense.forward_detailed(query, reference, features, SHAPES)
        assert isinstance(out_s.trace_executed, CompactSamplingTrace)
        assert out_s.stats.sparse_neighbors
        assert isinstance(out_d.trace_executed, SamplingTrace)
        # The .trace property materializes the full trace on demand and it
        # matches the dense path's trace exactly (same locations).
        materialized = out_s.trace
        assert isinstance(materialized, SamplingTrace)
        np.testing.assert_array_equal(materialized.flat_indices, out_d.trace.flat_indices)
        np.testing.assert_array_equal(materialized.weights, out_d.trace.weights)
        assert out_s.dense_trace() is materialized  # cached

    def test_compact_trace_matches_executed_mask(self):
        features, query, reference = _defa_inputs(seed=26)
        sparse = _make_defa(FP32_CONFIG, "sparse", seed=15)
        out = sparse.forward_detailed(query, reference, features, SHAPES)
        executed = out.trace_executed
        np.testing.assert_array_equal(
            executed.kept, np.flatnonzero(out.point_mask.reshape(-1))
        )
