"""CLI tests for the benchmark harness and the regression gate.

``benchmarks/run_all.py`` and ``benchmarks/compare_bench.py`` are the CI
perf contract — drift detection (``--check``), the speedup-regression fence
and the friendly argument validation were previously untested.  These tests
drive both ``main()`` entry points against tmp-path JSON fixtures (and
monkeypatched benchmark runners, so nothing slow executes) and pin the exit
codes CI relies on: 0 = pass, 1 = regression/drift, 2 = argparse error.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))

import compare_bench  # noqa: E402  (path set up above)
import run_all  # noqa: E402


def _record(engine_speedup=4.0, sweep_half=5.0, encoder_drift=1e-3, sweep_drift=1e-4):
    """A minimal but shape-faithful run_all-style record."""
    return {
        "name": "run_all",
        "config": {"scale": "compact", "repeats": 1},
        "benchmarks": [
            {
                "name": "batched_engine",
                "speedup": engine_speedup,
                "max_abs_diff": 1e-6,
                "equivalence_tol": 1e-5,
            },
            {
                "name": "sparse_speedup",
                "equivalence_tol": 5e-3,
                "results": [
                    {"fwp_k": 1.0, "pap_threshold": 0.035, "max_abs_diff": sweep_drift}
                ],
                "summary": {
                    "max_speedup": 7.0,
                    "speedup_at_half_pixel_reduction": sweep_half,
                    "encoder_speedup": 3.0,
                    "encoder_ffn_speedup": 1.4,
                },
                "encoder": {
                    "max_abs_diff": encoder_drift,
                    "equivalence_tol": 1e-2,
                },
                "encoder_blockwise": {
                    "fp32": {"max_abs_diff": 2e-6, "equivalence_tol": 1e-5},
                    "int12": {"max_abs_diff": 3e-3, "equivalence_tol": 2e-2},
                },
            },
        ],
    }


def _write(tmp_path, name, record):
    path = tmp_path / name
    path.write_text(json.dumps(record))
    return path


class TestCompareBenchExtraction:
    def test_extract_speedups_tracks_scalars_and_summary_aggregates(self):
        speedups = compare_bench.extract_speedups(_record())
        assert speedups["batched_engine.speedup"] == 4.0
        assert speedups["sparse_speedup.max_speedup"] == 7.0
        assert speedups["sparse_speedup.speedup_at_half_pixel_reduction"] == 5.0
        assert speedups["sparse_speedup.encoder_speedup"] == 3.0
        assert speedups["sparse_speedup.encoder_ffn_speedup"] == 1.4

    def test_extract_speedups_tracks_ffn_speedup_scalar(self):
        record = {"name": "encoder_sparse", "speedup": 3.0, "ffn_speedup": 1.3}
        speedups = compare_bench.extract_speedups(record)
        assert speedups == {
            "encoder_sparse.speedup": 3.0,
            "encoder_sparse.ffn_speedup": 1.3,
        }

    def test_extract_probes_includes_embedded_encoder_record(self):
        probes = compare_bench.extract_equivalence_probes(_record())
        by_name = {p["probe"]: p for p in probes}
        assert by_name["sparse_speedup.encoder"]["tolerance"] == 1e-2
        assert by_name["sparse_speedup.encoder_blockwise.fp32"]["tolerance"] == 1e-5
        assert by_name["sparse_speedup.encoder_blockwise.int12"]["max_abs_diff"] == 3e-3
        assert by_name["batched_engine"]["max_abs_diff"] == 1e-6
        assert "sparse_speedup[fwp_k=1.0, pap=0.035]" in by_name

    def test_encoder_record_without_tolerance_is_not_a_probe(self):
        """A diverged-trajectory encoder record (no equivalence_tol) must be
        reported as diagnostic only, never gated."""
        record = _record()
        del record["benchmarks"][1]["encoder"]["equivalence_tol"]
        probes = compare_bench.extract_equivalence_probes(record)
        assert "sparse_speedup.encoder" not in {p["probe"] for p in probes}

    def test_single_benchmark_record_shape(self):
        record = {
            "name": "sparse_speedup",
            "equivalence_tol": 5e-3,
            "results": [{"fwp_k": 0.5, "max_abs_diff": 2e-4}],
            "summary": {"max_speedup": 2.0},
        }
        assert compare_bench.extract_speedups(record) == {
            "sparse_speedup.max_speedup": 2.0
        }
        (probe,) = compare_bench.extract_equivalence_probes(record)
        assert probe["probe"] == "sparse_speedup[fwp_k=0.5]"


class TestCompareBenchCli:
    def test_identical_records_pass(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record())
        curr = _write(tmp_path, "curr.json", _record())
        rc = compare_bench.main(["--baseline", str(base), "--current", str(curr)])
        assert rc == 0
        assert "benchmark comparison passed" in capsys.readouterr().out

    def test_speedup_regression_fails(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record(engine_speedup=4.0))
        curr = _write(tmp_path, "curr.json", _record(engine_speedup=2.0))
        rc = compare_bench.main(["--baseline", str(base), "--current", str(curr)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "BENCH REGRESSION" in captured.err
        assert "batched_engine.speedup" in captured.err

    def test_regression_within_tolerance_passes(self, tmp_path):
        base = _write(tmp_path, "base.json", _record(engine_speedup=4.0))
        curr = _write(tmp_path, "curr.json", _record(engine_speedup=3.5))
        rc = compare_bench.main(
            ["--baseline", str(base), "--current", str(curr), "--tolerance", "0.2"]
        )
        assert rc == 0

    def test_equivalence_drift_fails_even_with_better_speedups(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record())
        curr = _write(
            tmp_path, "curr.json", _record(engine_speedup=9.0, encoder_drift=5e-2)
        )
        rc = compare_bench.main(["--baseline", str(base), "--current", str(curr)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "sparse_speedup.encoder" in captured.err
        assert "drift" in captured.err

    def test_missing_metric_fails_unless_allowed(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record())
        current = _record()
        del current["benchmarks"][1]["summary"]["encoder_ffn_speedup"]
        curr = _write(tmp_path, "curr.json", current)
        rc = compare_bench.main(["--baseline", str(base), "--current", str(curr)])
        assert rc == 1
        assert "absent from the current record" in capsys.readouterr().err
        rc = compare_bench.main(
            ["--baseline", str(base), "--current", str(curr), "--allow-missing"]
        )
        assert rc == 0

    def test_new_metric_in_current_is_reported_not_failed(self, tmp_path, capsys):
        baseline = _record()
        del baseline["benchmarks"][1]["summary"]["encoder_speedup"]
        base = _write(tmp_path, "base.json", baseline)
        curr = _write(tmp_path, "curr.json", _record())
        rc = compare_bench.main(["--baseline", str(base), "--current", str(curr)])
        assert rc == 0
        assert "new" in capsys.readouterr().out

    def test_invalid_tolerance_is_an_argparse_error(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record())
        with pytest.raises(SystemExit) as excinfo:
            compare_bench.main(
                ["--baseline", str(base), "--current", str(base), "--tolerance", "1.5"]
            )
        assert excinfo.value.code == 2
        assert "--tolerance must be in [0, 1)" in capsys.readouterr().err

    def test_missing_record_file_is_a_friendly_exit(self, tmp_path):
        base = _write(tmp_path, "base.json", _record())
        with pytest.raises(SystemExit) as excinfo:
            compare_bench.main(
                ["--baseline", str(base), "--current", str(tmp_path / "nope.json")]
            )
        assert "not found" in str(excinfo.value)

    def test_invalid_json_is_a_friendly_exit(self, tmp_path):
        base = _write(tmp_path, "base.json", _record())
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            compare_bench.main(["--baseline", str(base), "--current", str(bad)])
        assert "not valid JSON" in str(excinfo.value)


class TestRunAllCli:
    @pytest.fixture
    def fast_benchmarks(self, monkeypatch):
        """Replace the slow benchmark runners with canned records."""
        record = _record()
        monkeypatch.setattr(
            run_all, "run_engine_benchmark", lambda repeats: record["benchmarks"][0]
        )
        monkeypatch.setattr(
            run_all, "run_sparse_benchmark", lambda scale, repeats: record["benchmarks"][1]
        )
        canned = {
            "name": "encoder_sparse",
            "speedup": 3.0,
            "ffn_speedup": 1.3,
            "max_abs_diff": 1e-3,
            "equivalence_tol": 1e-2,
        }
        monkeypatch.setattr(
            run_all, "run_encoder_sparse_benchmark", lambda scale, repeats: dict(canned)
        )
        monkeypatch.setattr(
            run_all,
            "run_encoder_fp32_equivalence",
            lambda scale, repeats: {
                "name": "encoder_equivalence_fp32",
                "speedup": 3.0,
                "max_abs_diff": 2e-6,
                "equivalence_tol": 1e-5,
            },
        )
        monkeypatch.setattr(
            run_all,
            "run_encoder_int12_equivalence",
            lambda scale, repeats: {
                "name": "encoder_equivalence_int12",
                "max_abs_diff": 4e-3,
                "equivalence_tol": 2e-2,
            },
        )
        monkeypatch.setattr(
            run_all,
            "run_sparse_fp32_equivalence",
            lambda scale, repeats: {
                "name": "sparse_equivalence_fp32",
                "speedup": 2.0,
                "max_abs_diff": 1e-6,
                "equivalence_tol": 1e-5,
            },
        )
        return record

    def test_writes_json_and_passes_check(self, tmp_path, capsys, fast_benchmarks):
        out = tmp_path / "BENCH_test.json"
        rc = run_all.main(["--json", str(out), "--check"])
        captured = capsys.readouterr()
        assert rc == 0
        assert out.exists()
        written = json.loads(out.read_text())
        assert {b["name"] for b in written["benchmarks"]} >= {
            "batched_engine",
            "sparse_speedup",
            "encoder_sparse",
            "encoder_equivalence_fp32",
        }
        assert "equivalence check passed" in captured.out

    def test_check_fails_on_drift_with_per_probe_summary(
        self, tmp_path, capsys, monkeypatch, fast_benchmarks
    ):
        monkeypatch.setattr(
            run_all,
            "run_encoder_fp32_equivalence",
            lambda scale, repeats: {
                "name": "encoder_equivalence_fp32",
                "speedup": 3.0,
                "max_abs_diff": 5e-4,  # way past the fp32 tolerance
                "equivalence_tol": 1e-5,
            },
        )
        out = tmp_path / "BENCH_drift.json"
        rc = run_all.main(["--json", str(out), "--check"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "EQUIVALENCE DRIFT" in captured.err
        assert "encoder_equivalence_fp32" in captured.err
        assert "[DRIFT]" in captured.out or "DRIFT" in captured.out

    def test_without_check_drift_does_not_fail(
        self, tmp_path, monkeypatch, fast_benchmarks
    ):
        monkeypatch.setattr(
            run_all,
            "run_encoder_fp32_equivalence",
            lambda scale, repeats: {
                "name": "encoder_equivalence_fp32",
                "speedup": 3.0,
                "max_abs_diff": 5e-4,
                "equivalence_tol": 1e-5,
            },
        )
        rc = run_all.main(["--json", str(tmp_path / "b.json")])
        assert rc == 0

    def test_unknown_scale_is_a_friendly_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_all.main(["--scale", "galactic"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown scale 'galactic'" in err
        assert "compact" in err  # the error lists the known scales

    @pytest.mark.parametrize("bad", ["0", "-3", "two"])
    def test_invalid_repeats_is_a_friendly_argparse_error(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_all.main(["--repeats", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "repeats" in err or "integer" in err

    def test_equivalence_probes_helper_marks_status(self, fast_benchmarks):
        record = {
            "name": "run_all",
            "benchmarks": [
                {"name": "ok_probe", "max_abs_diff": 1e-7, "equivalence_tol": 1e-5},
                {"name": "bad_probe", "max_abs_diff": 1e-2, "equivalence_tol": 1e-5},
            ],
        }
        probes = run_all.equivalence_probes(record)
        status = {p["probe"]: p["ok"] for p in probes}
        assert status == {"ok_probe": True, "bad_probe": False}
