"""Tests for the one-object execution-knob surface (PR 8).

``ExecutionOptions`` bundles ``sparse_mode`` / ``kernel_backend`` /
``collect_details`` / ``enable_query_pruning``; the shimmed constructors and
per-call surfaces accept the legacy loose keywords only through
``normalize_execution_options``, which must (a) produce byte-identical
behavior to the options object on both the fp32 and INT12 paths, and (b)
emit exactly one ``DeprecationWarning`` per call *site*, not per call.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.config import DEFAConfig
from repro.core.encoder_runner import DEFAEncoderRunner
from repro.engine.batching import defa_forward_fn
from repro.kernels import (
    ExecutionOptions,
    normalize_execution_options,
    reset_deprecation_warnings,
)
from repro.nn.encoder import DeformableEncoder
from repro.nn.positional import make_reference_points, sine_positional_encoding
from repro.utils.shapes import LevelShape

SHAPES = [LevelShape(8, 12), LevelShape(4, 6)]
N_IN = sum(s.num_pixels for s in SHAPES)
D_MODEL = 32


@pytest.fixture(autouse=True)
def _fresh_warning_registry():
    """Per-site dedup is process-global; isolate it per test."""
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def _encoder(seed: int = 0) -> DeformableEncoder:
    return DeformableEncoder(
        num_layers=2,
        d_model=D_MODEL,
        num_heads=4,
        num_levels=len(SHAPES),
        num_points=2,
        ffn_dim=64,
        rng=seed,
    )


def _forward(runner: DEFAEncoderRunner) -> np.ndarray:
    rng = np.random.default_rng(3)
    src = rng.standard_normal((N_IN, D_MODEL)).astype(np.float32)
    pos = sine_positional_encoding(SHAPES, D_MODEL)
    reference_points = make_reference_points(SHAPES)
    return runner.forward(src, pos, reference_points, SHAPES).memory


class TestExecutionOptions:
    def test_defaults_inherit(self):
        options = ExecutionOptions()
        assert options.sparse_mode is None
        assert options.kernel_backend is None
        assert options.collect_details is False
        assert options.enable_query_pruning is None
        assert options.machine_profile is None

    def test_machine_profile_accepts_profile_spec_only(self):
        from repro.kernels import MachineProfile

        assert ExecutionOptions(machine_profile="reference").machine_profile == "reference"
        profile = MachineProfile(name="opts")
        assert ExecutionOptions(machine_profile=profile).machine_profile is profile
        with pytest.raises(TypeError, match="machine_profile"):
            ExecutionOptions(machine_profile=42)

    def test_machine_profile_picklable_inside_options(self):
        import pickle

        from repro.kernels import MachineProfile

        options = ExecutionOptions(machine_profile=MachineProfile(name="travels"))
        assert pickle.loads(pickle.dumps(options)) == options

    def test_invalid_sparse_mode_rejected(self):
        with pytest.raises(ValueError, match="sparse_mode"):
            ExecutionOptions(sparse_mode="blocky")

    def test_invalid_backend_name_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionOptions(kernel_backend="vulkan")

    def test_with_overrides(self):
        options = ExecutionOptions(sparse_mode="sparse")
        updated = options.with_overrides(collect_details=True)
        assert updated.sparse_mode == "sparse"
        assert updated.collect_details is True
        assert options.collect_details is False  # frozen: original unchanged

    def test_picklable(self):
        import pickle

        options = ExecutionOptions(sparse_mode="dense", kernel_backend="fused")
        assert pickle.loads(pickle.dumps(options)) == options


class TestNormalization:
    def test_options_plus_legacy_keyword_rejected(self):
        with pytest.raises(TypeError, match="cannot combine"):
            DEFAEncoderRunner(
                _encoder(),
                DEFAConfig(),
                ExecutionOptions(sparse_mode="dense"),
                sparse_mode="sparse",
            )

    def test_positional_string_coerced_as_sparse_mode(self):
        # The legacy positional-string convention still works — and warns,
        # because it is itself the deprecated surface.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            runner = DEFAEncoderRunner(_encoder(), DEFAConfig(), "dense")
        assert runner.sparse_mode == "dense"
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)

    def test_non_options_object_rejected(self):
        with pytest.raises(TypeError, match="ExecutionOptions"):
            DEFAEncoderRunner(_encoder(), DEFAConfig(), object())

    def test_per_call_surfaces_reject_construction_knobs(self):
        runner = DEFAEncoderRunner(_encoder(), DEFAConfig(enable_query_pruning=True))
        src = np.zeros((N_IN, D_MODEL), dtype=np.float32)
        pos = sine_positional_encoding(SHAPES, D_MODEL)
        reference_points = make_reference_points(SHAPES)
        with pytest.raises(ValueError, match="per-block"):
            runner.defa_layers[0].forward_detailed(
                src + pos,
                reference_points,
                src,
                SHAPES,
                options=ExecutionOptions(sparse_mode="sparse"),
            )
        with pytest.raises(ValueError, match="construction"):
            defa_forward_fn(
                runner, ExecutionOptions(enable_query_pruning=True)
            )
        with pytest.raises(ValueError, match="batched memory"):
            defa_forward_fn(runner, ExecutionOptions(collect_details=True))


class TestShimEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            DEFAConfig(quant_bits=None, enable_query_pruning=True),
            DEFAConfig(quant_bits=12, enable_query_pruning=True),
        ],
        ids=["fp32", "int12"],
    )
    def test_legacy_kwargs_bit_identical_to_options(self, config):
        encoder = _encoder()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = DEFAEncoderRunner(
                encoder, config, sparse_mode="sparse", backend="fused"
            )
        modern = DEFAEncoderRunner(
            encoder,
            config,
            ExecutionOptions(sparse_mode="sparse", kernel_backend="fused"),
        )
        np.testing.assert_array_equal(_forward(legacy), _forward(modern))

    def test_legacy_forward_fn_bit_identical(self):
        encoder = _encoder()
        runner = DEFAEncoderRunner(encoder, DEFAConfig(enable_query_pruning=True))
        rng = np.random.default_rng(5)
        batch = rng.standard_normal((2, N_IN, D_MODEL)).astype(np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy_fn = defa_forward_fn(runner, sparse_mode="sparse")
        modern_fn = defa_forward_fn(runner, ExecutionOptions(sparse_mode="sparse"))
        np.testing.assert_array_equal(
            legacy_fn(batch, SHAPES), modern_fn(batch, SHAPES)
        )


class TestDeprecationWarnings:
    def test_shim_warns_once_per_call_site(self):
        encoder = _encoder()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):  # same site, repeated: one warning
                DEFAEncoderRunner(encoder, DEFAConfig(), sparse_mode="dense")
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "ExecutionOptions" in str(caught[0].message)

    def test_distinct_call_sites_each_warn(self):
        encoder = _encoder()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DEFAEncoderRunner(encoder, DEFAConfig(), sparse_mode="dense")
            DEFAEncoderRunner(encoder, DEFAConfig(), sparse_mode="dense")
        assert len(caught) == 2

    def test_options_path_never_warns(self):
        encoder = _encoder()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            DEFAEncoderRunner(encoder, DEFAConfig(), ExecutionOptions())
            defa_forward_fn(
                DEFAEncoderRunner(encoder, DEFAConfig()), ExecutionOptions()
            )

    def test_normalize_reports_owner_and_keyword(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            normalize_execution_options(owner="MySurface", backend="fused")
        assert len(caught) == 1
        message = str(caught[0].message)
        assert "MySurface" in message
        assert "backend" in message
