"""Tests for the quantization substrate (INT12 / INT8 fake quantization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.modules import Linear
from repro.quant.calibration import MinMaxCalibrator, PercentileCalibrator
from repro.quant.quantizer import (
    QuantSpec,
    compute_scale,
    dequantize,
    fake_quantize,
    quantization_error,
    quantize,
)
from repro.quant.qmodules import QuantizedLinear, quantize_linear


class TestQuantSpec:
    def test_ranges(self):
        spec = QuantSpec(num_bits=8)
        assert spec.qmax == 127 and spec.qmin == -128
        spec12 = QuantSpec(num_bits=12)
        assert spec12.qmax == 2047 and spec12.qmin == -2048

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantSpec(num_bits=1)


class TestQuantizeDequantize:
    def test_roundtrip_error_bounded_by_scale(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000).astype(np.float32)
        spec = QuantSpec(num_bits=12)
        scale = compute_scale(x, spec)
        recon = dequantize(quantize(x, scale, spec), scale)
        assert np.max(np.abs(recon - x)) <= scale * 0.5 + 1e-6

    def test_int12_much_better_than_int8(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(5000).astype(np.float32)
        err8 = quantization_error(x, QuantSpec(num_bits=8))
        err12 = quantization_error(x, QuantSpec(num_bits=12))
        assert err12 < err8 / 8

    def test_per_channel_scales(self):
        x = np.stack([np.ones(10), 100 * np.ones(10)], axis=1)
        spec = QuantSpec(num_bits=8, per_channel=True)
        scale = compute_scale(x, spec)
        assert scale.shape == (2,)
        assert scale[1] > scale[0]

    def test_clipping_at_extremes(self):
        spec = QuantSpec(num_bits=8)
        q = quantize(np.array([1e6]), np.array(1.0), spec)
        assert q[0] == spec.qmax

    def test_fake_quantize_idempotent(self):
        x = np.random.default_rng(0).standard_normal(100)
        spec = QuantSpec(num_bits=10)
        once = fake_quantize(x, spec)
        twice = fake_quantize(once, spec)
        assert np.allclose(once, twice, atol=1e-6)

    def test_zero_input(self):
        spec = QuantSpec(num_bits=8)
        assert np.allclose(fake_quantize(np.zeros(5), spec), 0.0)

    @given(st.integers(4, 16))
    @settings(max_examples=10, deadline=None)
    def test_error_decreases_with_bits(self, bits):
        x = np.random.default_rng(42).standard_normal(2000)
        err_low = quantization_error(x, QuantSpec(num_bits=bits))
        err_high = quantization_error(x, QuantSpec(num_bits=bits + 2))
        assert err_high <= err_low + 1e-9


class TestCalibrators:
    def test_minmax(self):
        cal = MinMaxCalibrator()
        cal.update(np.array([1.0, -3.0]))
        cal.update(np.array([2.0]))
        assert cal.max_abs() == 3.0
        assert cal.num_batches == 2

    def test_minmax_empty_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxCalibrator().max_abs()

    def test_percentile_clips_outliers(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(10000)
        data[0] = 1000.0
        cal = PercentileCalibrator(percentile=99.0)
        cal.update(data)
        assert cal.max_abs() < 10.0

    def test_percentile_invalid(self):
        with pytest.raises(ValueError):
            PercentileCalibrator(percentile=0.0)

    def test_percentile_empty_raises(self):
        with pytest.raises(RuntimeError):
            PercentileCalibrator().max_abs()


class TestQuantizedLinear:
    def test_close_to_fp32_at_int12(self):
        linear = Linear(32, 16, rng=0)
        qlinear = quantize_linear(linear, num_bits=12)
        x = np.random.default_rng(1).standard_normal((20, 32)).astype(np.float32)
        rel = np.linalg.norm(qlinear(x) - linear(x)) / np.linalg.norm(linear(x))
        assert rel < 0.01

    def test_int8_worse_than_int12(self):
        linear = Linear(32, 16, rng=0)
        x = np.random.default_rng(1).standard_normal((20, 32)).astype(np.float32)
        ref = linear(x)
        err8 = np.linalg.norm(quantize_linear(linear, 8)(x) - ref)
        err12 = np.linalg.norm(quantize_linear(linear, 12)(x) - ref)
        assert err12 < err8

    def test_flops_unchanged(self):
        linear = Linear(16, 8, rng=0)
        assert quantize_linear(linear, 12).flops(10) == linear.flops(10)

    def test_feature_properties(self):
        linear = Linear(16, 8, rng=0)
        qlinear = QuantizedLinear(linear, QuantSpec(12))
        assert qlinear.in_features == 16 and qlinear.out_features == 8
