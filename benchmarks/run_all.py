"""Repo-standard benchmark harness: run every perf benchmark, emit one JSON.

Runs the batched-engine benchmark and the sparse-execution sweep and writes a
single machine-readable record (name, config, speedups, per-kernel timings)
so the perf trajectory can be tracked PR-over-PR::

    PYTHONPATH=src python benchmarks/run_all.py --json BENCH_all.json

``--scale compact`` (the default) keeps the iteration budget tight enough for
a CI smoke job; ``--scale paper`` reproduces the full paper-scale numbers of
``benchmarks/bench_sparse_speedup.py``.  ``--check`` exits non-zero when the
sparse/dense (or batched/serial) equivalence drifts beyond tolerance, which
is how CI guards the numerics without asserting hardware-dependent speedups.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# The sibling benchmark scripts are plain files, not a package; make them
# importable regardless of how this script is invoked (direct path, -m, ...).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.config import DEFAConfig
from repro.eval.profiler import (
    measure_encoder_batched_speedup,
    measure_encoder_blockwise_equivalence,
    measure_encoder_sparse_speedup,
    measure_kernel_fusion,
    measure_sparse_speedup,
    sweep_sparse_speedup,
)
from repro.kernels import (
    COMPILED_AVAILABLE,
    KERNEL_BACKENDS,
    get_active_profile,
    get_backend,
    resolve_profile,
    set_active_profile,
    set_backend,
)
from repro.kernels.compiled_backend import COMPILED_EQUIVALENCE_TOL
from repro.nn.encoder import DeformableEncoder
from repro.utils.shapes import make_level_shapes
from repro.workloads.specs import get_workload

KERNEL_FUSION_EQUIVALENCE_TOL = 0.0
"""Fused-vs-reference backend drift bound: the fused backend performs the
same float operations in the same order, so the two are bit-identical —
any drift at all is an execution bug, hence the exact-zero tolerance.
The compiled backend has its *own* tier (``COMPILED_EQUIVALENCE_TOL``,
currently also 0.0) gated as a separate probe — a platform where the C
kernels cannot match numpy bit for bit would widen that tier explicitly
instead of loosening this gate."""

ENGINE_EQUIVALENCE_TOL = 1e-5
"""Batched-vs-serial engine outputs are float32-path only: strict tolerance."""

SPARSE_FP32_EQUIVALENCE_TOL = 1e-5
"""Sparse-vs-dense drift bound for unquantized configs."""

SPARSE_INT12_EQUIVALENCE_TOL = 5e-3
"""Sparse-vs-dense drift bound for INT12 configs: the ~1e-7 float32 kernel
rounding difference can be amplified to a full quantization step by the
dynamically scaled output projection, so the bound is a few steps wide."""

#: Sparse-sweep scale, repeats, serving-stream and video-stream length per
#: harness preset.
SCALE_PRESETS = {
    "compact": {
        "sparse_scale": "small",
        "repeats": 2,
        "serving_requests": 40,
        "streaming_frames": 6,
    },
    "medium": {
        "sparse_scale": "medium",
        "repeats": 3,
        "serving_requests": 64,
        "streaming_frames": 8,
    },
    "paper": {
        "sparse_scale": "paper",
        "repeats": 3,
        "serving_requests": 96,
        "streaming_frames": 8,
    },
}


def run_engine_benchmark(repeats: int) -> dict:
    """The batched-engine speedup benchmark (see bench_batched_engine.py)."""
    shapes = make_level_shapes(32, 48, (8, 16))
    encoder = DeformableEncoder(
        num_layers=2,
        d_model=64,
        num_heads=4,
        num_levels=len(shapes),
        num_points=2,
        ffn_dim=128,
        rng=0,
    )
    report = measure_encoder_batched_speedup(
        encoder, shapes, batch_size=8, repeats=repeats, rng=1
    )
    return {
        "name": "batched_engine",
        "config": {
            "batch_size": report.batch_size,
            "num_tokens": report.num_tokens,
            "d_model": report.d_model,
        },
        "speedup": report.speedup,
        "timings_ms": {"serial": 1e3 * report.serial_s, "batched": 1e3 * report.batched_s},
        "max_abs_diff": report.max_abs_diff,
        "equivalence_tol": ENGINE_EQUIVALENCE_TOL,
    }


def run_sparse_benchmark(sparse_scale: str, repeats: int) -> dict:
    """The sparse-execution sweep, in the exact record shape of
    ``bench_sparse_speedup.py`` so the two JSONs stay comparable PR-over-PR."""
    from bench_sparse_speedup import sweep_record

    reports = sweep_sparse_speedup(scale=sparse_scale, repeats=repeats, rng_seed=0)
    record = sweep_record(reports, repeats)
    record["generated_by"] = "benchmarks/run_all.py"
    record["equivalence_tol"] = SPARSE_INT12_EQUIVALENCE_TOL
    return record


def run_encoder_sparse_benchmark(sparse_scale: str, repeats: int) -> dict:
    """End-to-end block-sparse encoder vs the PR 3 cost profile (INT12).

    Times the full :class:`DEFAEncoderRunner` (query pruning on, frozen-row
    semantics) in three profiles — all-dense, sparse attention with a dense
    inter-block stage (the PR 3 path), and fully block-sparse — so
    ``ffn_speedup`` isolates the additional win of the row-compacted
    FFN/LayerNorm stage.  The end-to-end diff only carries a tolerance (and
    becomes a gated probe) when both runs kept the same mask trajectory;
    pure execution-path drift is gated by the lockstep probes
    (``encoder_equivalence_fp32`` / ``encoder_equivalence_int12``).
    """
    from bench_sparse_speedup import ENCODER_INT12_TOL, ENCODER_NUM_LAYERS

    workload = get_workload("deformable_detr", sparse_scale)
    # The tracked fused_speedup sits near 1x at compact scale, where one-shot
    # wall clocks jitter more than the bench-regression fence; a best-of-3
    # floor keeps the ratio stable (each extra repeat costs ~2 s there).
    report = measure_encoder_sparse_speedup(
        workload, num_layers=ENCODER_NUM_LAYERS, repeats=max(repeats, 3), rng=0
    )
    record = {
        "name": "encoder_sparse",
        "config": {
            "workload": workload.name,
            "num_layers": report.num_layers,
            "fwp_k": report.fwp_k,
            "quant_bits": 12,
            "enable_query_pruning": True,
        },
        "speedup": report.speedup,
        "ffn_speedup": report.ffn_speedup,
        "fused_speedup": report.fused_speedup,
        "fused_max_abs_diff": report.fused_max_abs_diff,
        "pixel_reduction": report.pixel_reduction,
        "timings_ms": {
            "dense": 1e3 * report.dense_s,
            "sparse_dense_ffn": 1e3 * report.sparse_dense_ffn_s,
            "sparse": 1e3 * report.sparse_s,
            "sparse_fused": 1e3 * report.sparse_fused_s,
        },
        "max_abs_diff": report.max_abs_diff,
        "mask_trajectory_matched": report.mask_trajectory_matched,
    }
    if report.sparse_compiled_s is not None:
        record["timings_ms"]["sparse_compiled"] = 1e3 * report.sparse_compiled_s
        record["compiled_speedup"] = report.compiled_speedup
        record["compiled"] = {
            "max_abs_diff": report.compiled_max_abs_diff,
            "equivalence_tol": COMPILED_EQUIVALENCE_TOL,
        }
    if report.mask_trajectory_matched:
        record["equivalence_tol"] = ENCODER_INT12_TOL
    return record


def _encoder_blockwise_probe(
    sparse_scale: str, quant_bits: int | None, tolerance: float, name: str
) -> dict:
    """One lockstep block-wise encoder equivalence probe (see
    :func:`repro.eval.profiler.measure_encoder_blockwise_equivalence`): both
    paths get identical block inputs and incoming masks at every block, so
    threshold decisions cannot flip and the drift bound is machine-
    independent — strict 1e-5 for fp32, a few quantization steps for INT12.
    """
    from bench_sparse_speedup import ENCODER_EQUIV_NUM_LAYERS

    workload = get_workload("deformable_detr", sparse_scale)
    config = DEFAConfig(fwp_k=1.0, quant_bits=quant_bits, enable_query_pruning=True)
    drift = measure_encoder_blockwise_equivalence(
        workload, config=config, num_layers=ENCODER_EQUIV_NUM_LAYERS, rng=0
    )
    return {
        "name": name,
        "config": {
            "workload": workload.name,
            "num_layers": ENCODER_EQUIV_NUM_LAYERS,
            "fwp_k": 1.0,
            "quant_bits": quant_bits,
            "enable_query_pruning": True,
        },
        "max_abs_diff": drift,
        "equivalence_tol": tolerance,
    }


def run_encoder_fp32_equivalence(sparse_scale: str, repeats: int) -> dict:
    """The block-sparse encoder held to the strict 1e-5 fp32 equivalence."""
    return _encoder_blockwise_probe(
        sparse_scale, None, SPARSE_FP32_EQUIVALENCE_TOL, "encoder_equivalence_fp32"
    )


def run_encoder_int12_equivalence(sparse_scale: str, repeats: int) -> dict:
    """The INT12 block-sparse encoder within its quantization-step bound."""
    from bench_sparse_speedup import ENCODER_INT12_TOL

    return _encoder_blockwise_probe(
        sparse_scale, 12, ENCODER_INT12_TOL, "encoder_equivalence_int12"
    )


def run_kernel_fusion_benchmark(sparse_scale: str, repeats: int) -> dict:
    """Fused-vs-reference kernel backend on one sparse DEFA block.

    Times the identical sparse execution (same inputs, same masks) on both
    kernel backends and reports the end-to-end and per-section speedups plus
    the output drift — gated at exactly zero, because the fused backend is
    bit-identical by construction.
    """
    workload = get_workload("deformable_detr", sparse_scale)
    # The tracked ratio sits near 1x at compact scale, where one-shot wall
    # clocks jitter more than the bench-regression fence; a best-of-3 floor
    # keeps the probe stable at negligible cost (the block runs in ~30 ms).
    report = measure_kernel_fusion(workload, repeats=max(repeats, 3), rng=0)
    record = {
        "name": "kernel_fusion",
        "config": {
            "workload": workload.name,
            "backends": list(KERNEL_BACKENDS),
            "compiled_available": COMPILED_AVAILABLE,
        },
        "speedup": report.speedup,
        "section_speedups": report.section_speedups(),
        "timings_ms": {
            "reference": 1e3 * report.reference_s,
            "fused": 1e3 * report.fused_s,
        },
        "max_abs_diff": report.max_abs_diff,
        "equivalence_tol": KERNEL_FUSION_EQUIVALENCE_TOL,
    }
    if report.compiled_s is not None:
        record["timings_ms"]["compiled"] = 1e3 * report.compiled_s
        record["compiled_speedup"] = report.compiled_speedup
        # The compiled backend's own equivalence tier, gated as a separate
        # embedded probe (kernel_fusion.compiled) so a diverging platform
        # would widen this tier explicitly, never the fused-vs-reference 0.0.
        record["compiled"] = {
            "max_abs_diff": report.compiled_max_abs_diff,
            "equivalence_tol": COMPILED_EQUIVALENCE_TOL,
        }
    return record


def run_sparse_fp32_equivalence(sparse_scale: str, repeats: int) -> dict:
    """One unquantized operating point, held to the strict 1e-5 equivalence.

    Query pruning is enabled so the probe covers the full sparse-v2 surface:
    compacted trace construction, row-compacted query/offset/output
    projections and the compacted gather, all against the equivalent
    masked-dense execution.
    """
    workload = get_workload("deformable_detr", sparse_scale)
    config = DEFAConfig(fwp_k=1.0, quant_bits=None, enable_query_pruning=True)
    report = measure_sparse_speedup(workload, config, repeats=repeats, rng=0)
    return {
        "name": "sparse_equivalence_fp32",
        "config": {
            "workload": workload.name,
            "fwp_k": 1.0,
            "quant_bits": None,
            "enable_query_pruning": True,
        },
        "speedup": report.speedup,
        "timings_ms": {"dense": 1e3 * report.dense_s, "sparse": 1e3 * report.sparse_s},
        "max_abs_diff": report.max_abs_diff,
        "equivalence_tol": SPARSE_FP32_EQUIVALENCE_TOL,
    }


def run_serving_benchmark(serving_requests: int, repeats: int) -> dict:
    """The serving-engine probe (see ``bench_serving.py``): one worker, a
    forced kill mid-stream, mixed shapes and fp32/INT12 request classes.

    The gated quantity is the served-vs-serial drift at exactly zero — it
    covers the whole scheduler surface *including* the worker death and the
    degraded-mode fallback, and is machine-independent because scheduling
    cannot change results.  The latency/throughput numbers are tracked as a
    trajectory by ``compare_bench.py`` behind a widened fence (latency
    percentiles of short single-core runs jitter far more than best-of-N
    ratios).
    """
    from bench_serving import serving_record, serving_report

    # Pin the harness backend into the per-class configs: the bank spec is
    # rebuilt inside worker *processes*, which otherwise use their own
    # process default rather than this process's --backend selection.
    backend = get_backend().name
    kill_at = serving_requests // 3
    report = serving_report(
        num_workers=1,
        num_requests=serving_requests,
        kill_worker_at=kill_at,
        repeats=repeats,
        backend=backend,
    )
    return serving_record(report, kill_worker_at=kill_at, backend=backend)


def run_serving_faults_benchmark(serving_requests: int, repeats: int) -> dict:
    """The chaos probe (PR 10, see ``bench_serving.py``): one replay through
    a scripted crash, a watchdog-killed 30 s hang and a transient raise.

    The gated quantity is the served-vs-serial drift at exactly zero
    *through every fault* — the request-lifecycle machinery (requeue, retry
    budget, watchdog, backoff restart) must be invisible in the outputs.
    The probe additionally hard-fails if the faults did not actually fire
    or the engine did not recover, so it can never silently degrade into a
    fault-free replay that gates nothing.
    """
    from bench_serving import serving_faults_record, serving_faults_report

    backend = get_backend().name
    report = serving_faults_report(
        num_requests=serving_requests, repeats=repeats, backend=backend
    )
    if report.worker_deaths != 2 or report.watchdog_kills != 1:
        raise RuntimeError(
            "serving_faults probe lost coverage: expected the scripted crash "
            "plus one watchdog kill, observed "
            f"deaths={report.worker_deaths} watchdog_kills={report.watchdog_kills}"
        )
    if report.mode != "primary" or report.num_failed or report.num_quarantined:
        raise RuntimeError(
            "serving_faults probe did not recover cleanly: "
            f"mode={report.mode!r} num_failed={report.num_failed} "
            f"num_quarantined={report.num_quarantined}"
        )
    return serving_faults_record(report, backend=backend)


def run_streaming_benchmark(sparse_scale: str, streaming_frames: int, repeats: int) -> dict:
    """The streaming-session probe (see ``bench_streaming.py``): a low-motion
    synthetic video encoded by a warm session against an every-frame-cold one.

    The tracked quantity is the steady-state vs cold-start per-frame speedup
    (temporal reuse, isolated from arena effects — both sessions keep warm
    arenas); the gated quantities are the lockstep replay drifts of the
    recorded warm masks under the usual fp32/INT12 tiers
    (``streaming.encoder_blockwise.*`` in ``--check``).  Note the speedup
    legitimately shrinks below the paper-scale fence at compact scales, where
    the cell-denominated dilation radii cover most of the coarse grids — the
    1.3x acceptance gate lives in ``bench_streaming.py`` at paper scale.
    """
    from bench_streaming import run_streaming_benchmark as run_streaming

    return run_streaming(
        scale=sparse_scale, num_frames=streaming_frames, repeats=repeats
    )


#: Every harness probe by record name, in run order.  The lambdas resolve the
#: runner functions *at call time* through module globals, so tests (and any
#: other caller) can monkeypatch ``run_all.run_engine_benchmark`` etc. by name
#: and still go through the registry.  ``--only`` validates against these keys.
PROBE_RUNNERS = {
    "batched_engine": lambda preset, repeats: run_engine_benchmark(repeats),
    "sparse_speedup": lambda preset, repeats: run_sparse_benchmark(
        preset["sparse_scale"], repeats
    ),
    "encoder_sparse": lambda preset, repeats: run_encoder_sparse_benchmark(
        preset["sparse_scale"], repeats
    ),
    "kernel_fusion": lambda preset, repeats: run_kernel_fusion_benchmark(
        preset["sparse_scale"], repeats
    ),
    "sparse_equivalence_fp32": lambda preset, repeats: run_sparse_fp32_equivalence(
        preset["sparse_scale"], repeats
    ),
    "encoder_equivalence_fp32": lambda preset, repeats: run_encoder_fp32_equivalence(
        preset["sparse_scale"], repeats
    ),
    "encoder_equivalence_int12": lambda preset, repeats: run_encoder_int12_equivalence(
        preset["sparse_scale"], repeats
    ),
    "serving": lambda preset, repeats: run_serving_benchmark(
        preset["serving_requests"], repeats
    ),
    "serving_faults": lambda preset, repeats: run_serving_faults_benchmark(
        preset["serving_requests"], repeats
    ),
    "streaming": lambda preset, repeats: run_streaming_benchmark(
        preset["sparse_scale"], preset["streaming_frames"], repeats
    ),
}


def equivalence_probes(record: dict) -> list[dict]:
    """Flatten every equivalence probe of a harness record.

    Returns one entry per probe — a top-level ``max_abs_diff`` or a sweep
    operating point — with its qualified name, measured drift, tolerance and
    pass/fail status, so ``--check`` can say exactly *which* probe drifted.
    The flattening (and the probe naming) is shared with
    ``benchmarks/compare_bench.py``, which gates the same record in CI.
    """
    from compare_bench import extract_equivalence_probes

    return [
        {**probe, "ok": probe["max_abs_diff"] <= probe["tolerance"]}
        for probe in extract_equivalence_probes(record)
    ]


def _scale_arg(value: str) -> str:
    if value not in SCALE_PRESETS:
        raise argparse.ArgumentTypeError(
            f"unknown scale {value!r}; known scales: {', '.join(sorted(SCALE_PRESETS))}"
        )
    return value


def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"repeats must be a positive integer, got {parsed}")
    return parsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--json", type=Path, default=Path("BENCH_all.json"),
                        help="output path of the machine-readable record")
    parser.add_argument("--scale", type=_scale_arg, default="compact",
                        metavar="{" + ",".join(sorted(SCALE_PRESETS)) + "}",
                        help="iteration budget: compact (CI smoke) ... paper (full numbers)")
    parser.add_argument("--repeats", type=_positive_int, default=None,
                        help="override best-of-N repeats of every benchmark")
    parser.add_argument("--backend", choices=KERNEL_BACKENDS, default=None,
                        help="kernel backend every probe executes with (default: the "
                             "process default — REPRO_KERNEL_BACKEND or 'fused'; "
                             "'compiled' falls back to 'fused' with a warning when the "
                             "extension is not built); the kernel_fusion probe always "
                             "times every available backend")
    parser.add_argument("--only", default=None, metavar="NAME[,NAME...]",
                        help="run only the named probes, comma-separated (known: "
                             + ", ".join(PROBE_RUNNERS) + "); used by the CI chaos "
                             "leg to gate the serving fault probes without paying "
                             "for the full harness")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if sparse/dense or batched/serial equivalence "
                             "drifts, with a per-probe summary")
    parser.add_argument("--profile", default=None, metavar="PROFILE",
                        help="dispatch profile every probe runs under: 'reference' or a "
                             "path to a calibrated MachineProfile JSON (see "
                             "repro.kernels.calibration; default: the process default — "
                             "REPRO_MACHINE_PROFILE or the committed reference profile). "
                             "A calibrated profile moves the dense/sparse crossovers, so "
                             "--check only accepts 'reference' (the committed constants "
                             "the equivalence baselines were recorded under)")
    args = parser.parse_args(argv)

    preset = SCALE_PRESETS[args.scale]
    repeats = args.repeats if args.repeats is not None else preset["repeats"]
    if args.only is not None:
        selected = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = sorted(set(selected) - set(PROBE_RUNNERS))
        if unknown:
            parser.error(
                f"unknown probe(s) {', '.join(map(repr, unknown))}; "
                f"known probes: {', '.join(PROBE_RUNNERS)}"
            )
        if not selected:
            parser.error("--only requires at least one probe name")
    else:
        selected = list(PROBE_RUNNERS)
    if args.backend is not None:
        set_backend(args.backend)
    if args.profile is not None:
        if args.check and args.profile != "reference":
            parser.error(
                "--check requires the deterministic committed constants; "
                "combine it only with --profile reference"
            )
        set_active_profile(resolve_profile(args.profile))

    print(
        f"running benchmarks (scale={args.scale}, repeats={repeats}, "
        f"backend={get_backend().name}, profile={get_active_profile().name}) ..."
    )
    record = {
        "name": "run_all",
        "config": {
            "scale": args.scale,
            "repeats": repeats,
            "kernel_backend": get_backend().name,
            "machine_profile": get_active_profile().name,
        },
        "benchmarks": [
            PROBE_RUNNERS[name](preset, repeats) for name in selected
        ],
    }
    if args.only is not None:
        # Recorded so a partial record can never be mistaken for (or compared
        # against) a full harness run by compare_bench.py.
        record["config"]["only"] = selected

    args.json.write_text(json.dumps(record, indent=2) + "\n")
    for bench in record["benchmarks"]:
        speedup = bench.get("speedup") or bench.get("summary", {}).get("max_speedup")
        if "throughput_rps" in bench:  # the serving probe tracks latency, not speedup
            print(
                f"  {bench['name']}: p50 {bench['p50_ms']:.1f} ms, "
                f"p99 {bench['p99_ms']:.1f} ms, "
                f"throughput {bench['throughput_rps']:.1f} req/s, "
                f"max |diff| {bench['max_abs_diff']:.2e}"
            )
        elif speedup is not None:
            print(f"  {bench['name']}: speedup {speedup:.2f}x")
        else:  # pure equivalence probes carry a drift, not a speedup
            print(f"  {bench['name']}: max |diff| {bench['max_abs_diff']:.2e}")
    print(f"wrote {args.json}")

    if args.check:
        probes = equivalence_probes(record)
        print(f"equivalence check ({len(probes)} probes):")
        for probe in probes:
            status = "ok  " if probe["ok"] else "DRIFT"
            print(
                f"  [{status}] {probe['probe']}: max |diff| "
                f"{probe['max_abs_diff']:.2e} (tol {probe['tolerance']:.0e})"
            )
        failures = [p for p in probes if not p["ok"]]
        if failures:
            for probe in failures:
                print(
                    f"EQUIVALENCE DRIFT: {probe['probe']}: max |diff| "
                    f"{probe['max_abs_diff']:.2e} exceeds tolerance "
                    f"{probe['tolerance']:.0e}",
                    file=sys.stderr,
                )
            print(f"{len(failures)} of {len(probes)} probes drifted", file=sys.stderr)
            return 1
        print("equivalence check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
