"""Benchmark regenerating Fig. 9: speedup and energy efficiency vs GPUs."""

from conftest import run_once

from repro.experiments import fig9_gpu_comparison


def test_fig9_gpu_comparison(benchmark):
    result = run_once(benchmark, fig9_gpu_comparison.run, measure_scale="small")
    print()
    print(result.as_table())
    for name, per_gpu in result.data.items():
        assert 5.0 < per_gpu["RTX 2080Ti"]["speedup"] < 20.0  # paper: 10.1 - 11.8x
        assert 15.0 < per_gpu["RTX 3090Ti"]["speedup"] < 45.0  # paper: 29.4 - 31.9x
        # The 3090Ti comparison always shows the larger speedup (the crossover shape).
        assert per_gpu["RTX 3090Ti"]["speedup"] > per_gpu["RTX 2080Ti"]["speedup"]
        assert per_gpu["RTX 2080Ti"]["ee_gain"] > 1.0
