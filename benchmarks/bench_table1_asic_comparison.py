"""Benchmark regenerating Table 1: comparison with published attention ASICs."""

from conftest import run_once

from repro.experiments import table1_asic_comparison


def test_table1_asic_comparison(benchmark):
    result = run_once(benchmark, table1_asic_comparison.run)
    print()
    print(result.as_table())
    improvements = result.data["ee_improvements"]
    # DEFA is more energy-efficient than every published attention accelerator
    # (paper: 2.2 - 3.7x).
    assert all(v > 1.5 for v in improvements.values())
    assert result.data["defa_row"]["area_mm2"] < 3.5
