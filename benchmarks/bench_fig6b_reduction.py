"""Benchmark regenerating Fig. 6(b): sampling-point / fmap-pixel / FLOP reduction."""

from conftest import run_once

from repro.experiments import fig6b_reduction


def test_fig6b_reduction(benchmark):
    result = run_once(benchmark, fig6b_reduction.run, scale="small")
    print()
    print(result.as_table())
    for name, payload in result.data.items():
        assert 0.7 < payload["sampling_point_reduction"] < 0.95  # paper: 82-86 %
        assert 0.25 < payload["fmap_pixel_reduction"] < 0.6  # paper: 42-44 %
        assert 0.4 < payload["flops_reduction"] < 0.65  # paper: 52-53 %
