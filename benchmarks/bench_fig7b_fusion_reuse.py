"""Benchmark regenerating Fig. 7(b): energy savings of operator fusion and fmap reuse."""

from conftest import run_once

from repro.experiments import fig7b_fusion_reuse


def test_fig7b_fusion_reuse(benchmark):
    result = run_once(benchmark, fig7b_fusion_reuse.run, scale="small")
    print()
    print(result.as_table())
    fusion = result.data["op_fusion"]["measured"]
    reuse = result.data["fmap_reuse"]["measured"]
    assert fusion["dram"] > 0.5  # paper: 73.3 %
    assert reuse["dram"] > 0.6  # paper: 88.2 %
    assert fusion["sram"] > 0.0 and reuse["sram"] > 0.0
