"""Benchmark regenerating Fig. 6(a): detection accuracy under the DEFA algorithm."""

from conftest import run_once

from repro.experiments import fig6a_accuracy


def test_fig6a_accuracy(benchmark):
    result = run_once(benchmark, fig6a_accuracy.run, scale="small", include_ablations=True)
    print()
    print(result.as_table())
    for name, payload in result.data["per_model"].items():
        # The DEFA configuration costs only a small fraction of the baseline AP...
        assert payload["estimated_defa_ap"] > 0.9 * payload["published_defa_ap"]
        # ...while INT8 quantization is catastrophic (the paper's 9.7 AP drop).
        assert payload["estimated_int8_ap"] < payload["estimated_defa_ap"]
