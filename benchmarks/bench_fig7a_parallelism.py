"""Benchmark regenerating Fig. 7(a): inter-level vs intra-level MSGS throughput."""

from conftest import run_once

from repro.experiments import fig7a_parallelism


def test_fig7a_parallelism(benchmark):
    result = run_once(benchmark, fig7a_parallelism.run, scale="small")
    print()
    print(result.as_table())
    for name, payload in result.data.items():
        assert payload["boost"] > 2.0  # paper: 3.02 - 3.09x
