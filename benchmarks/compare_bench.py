"""Compare two benchmark records and fail on speedup regressions or drift.

The repo-standard harness (``benchmarks/run_all.py``) and the sparse-speedup
benchmark both emit machine-readable ``BENCH_*.json`` records.  This tool
diffs a *current* record against a *baseline* record (the previous
main-branch artifact, or the committed reference under
``benchmarks/baselines/``) and exits non-zero when

* any tracked **speedup metric** regresses by more than ``--tolerance``
  (relative; default 20 % — wall-clock ratios are hardware-dependent and
  jitter between runners, so the gate guards the trajectory, not the exact
  number),
* any tracked **serving metric** (p50/p99 latency, throughput) regresses past
  the widened :data:`LATENCY_FENCE_FACTOR` fence — percentiles of one short
  replay jitter more than best-of-N ratios, so their fence only catches
  structural regressions,
* any **equivalence probe** of the current record drifts beyond its own
  recorded tolerance (numerics are machine-independent, so this is exact),
* a **request-lifecycle counter** (:data:`LIFECYCLE_COUNTERS`) tracked by the
  baseline disappears from the current record — the values are workload-
  dependent and purely informational, but a serving record that silently
  stops carrying them has lost fault-model coverage, so the *presence* fence
  is structural, or
* a metric tracked by the baseline disappears from the current record
  (``--allow-missing`` downgrades this to a warning, for comparing records
  produced by older harness versions).

Usage::

    python benchmarks/compare_bench.py --baseline BENCH_old.json \
        --current BENCH_new.json --tolerance 0.2

Both the aggregate ``run_all`` record shape (``{"benchmarks": [...]}``) and
the single-benchmark shape of ``bench_sparse_speedup.py`` are understood.
CI wires this as the ``bench-regression`` job: it downloads the previous
main-branch ``bench-smoke`` artifact when one is reachable and falls back to
the committed baseline otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default relative speedup-regression tolerance (20 %).
DEFAULT_TOLERANCE = 0.2

#: Extra widening of the serving latency/throughput fence on top of the
#: speedup tolerance.  Serving percentiles come from one short replay of a
#: bursty stream on a single shared-CI core — they jitter far more than the
#: best-of-N wall-clock *ratios* the speedup gate tracks — so the fence is
#: ``(1 + tolerance) * LATENCY_FENCE_FACTOR``-fold: it catches structural
#: regressions (a poll loop going quadratic, a lost batch stalling the
#: queue), not scheduler noise.
LATENCY_FENCE_FACTOR = 2.0

#: Request-lifecycle counters (PR 10) recorded by every serving probe.  Their
#: values are fenced *structurally only*: shed/expired/retried counts depend
#: on the scripted fault plan and scheduler timing, so the numbers are
#: informational — but a record that stops carrying one of these keys has
#: silently lost request-lifecycle coverage, which fails the gate (unless
#: ``--allow-missing``, for records from pre-PR-10 harness versions).
LIFECYCLE_COUNTERS = (
    "num_shed",
    "num_expired",
    "num_retried",
    "num_quarantined",
    "watchdog_kills",
    "num_failed",
)


def _benchmarks(record: dict) -> list[dict]:
    """The benchmark entries of a record, whatever its shape.

    ``run_all`` records carry a ``benchmarks`` list; single-benchmark records
    (e.g. ``BENCH_sparse.json``) *are* the entry.
    """
    if "benchmarks" in record:
        return list(record["benchmarks"])
    return [record]


def extract_speedups(record: dict) -> dict[str, float]:
    """Flatten the tracked speedup metrics of a record into ``{name: value}``.

    Per-benchmark: the scalar ``speedup`` when present, plus the sweep
    summary aggregates (``max_speedup`` and the speedup at the ~50 %
    pixel-reduction operating point).  Individual sweep operating points are
    deliberately not gated — single wall-clock points are too noisy for a
    20 % fence; the aggregates are what the PR acceptance criteria track.
    """
    speedups: dict[str, float] = {}
    for bench in _benchmarks(record):
        name = bench.get("name", "benchmark")
        for key in ("speedup", "ffn_speedup", "fused_speedup", "compiled_speedup"):
            if isinstance(bench.get(key), (int, float)):
                speedups[f"{name}.{key}"] = float(bench[key])
        summary = bench.get("summary", {})
        for key in (
            "max_speedup",
            "speedup_at_half_pixel_reduction",
            "encoder_speedup",
            "encoder_ffn_speedup",
            "encoder_fused_speedup",
            "encoder_compiled_speedup",
        ):
            if isinstance(summary.get(key), (int, float)):
                speedups[f"{name}.{key}"] = float(summary[key])
    return speedups


def extract_serving_metrics(record: dict) -> dict[str, tuple[str, float]]:
    """The tracked serving metrics of a record: ``{name: (direction, value)}``.

    ``direction`` is ``"higher"`` (throughput: regressing means falling) or
    ``"lower"`` (latency percentiles: regressing means rising).  Both are
    gated behind the widened :data:`LATENCY_FENCE_FACTOR` fence — see there.
    """
    metrics: dict[str, tuple[str, float]] = {}
    for bench in _benchmarks(record):
        name = bench.get("name", "benchmark")
        if isinstance(bench.get("throughput_rps"), (int, float)):
            metrics[f"{name}.throughput_rps"] = ("higher", float(bench["throughput_rps"]))
        for key in ("p50_ms", "p99_ms"):
            if isinstance(bench.get(key), (int, float)):
                metrics[f"{name}.{key}"] = ("lower", float(bench[key]))
    return metrics


def extract_lifecycle_counters(record: dict) -> dict[str, float]:
    """The request-lifecycle counters of a record: ``{name.key: value}``.

    See :data:`LIFECYCLE_COUNTERS` — presence is gated, values are not.
    """
    counters: dict[str, float] = {}
    for bench in _benchmarks(record):
        name = bench.get("name", "benchmark")
        for key in LIFECYCLE_COUNTERS:
            if isinstance(bench.get(key), (int, float)):
                counters[f"{name}.{key}"] = float(bench[key])
    return counters


def extract_equivalence_probes(record: dict) -> list[dict]:
    """Every equivalence probe of a record: name, measured drift, tolerance.

    This is the canonical probe-flattening used by both this tool and
    ``run_all.py --check``, so probe names stay identical across the two
    reports.  Sweep operating points are qualified by every knob present
    (``fwp_k`` and ``pap_threshold``) so points differing in either are
    distinguishable.
    """
    probes = []
    for bench in _benchmarks(record):
        name = bench.get("name", "benchmark")
        # An embedded end-to-end encoder record (sparse_speedup sweeps) only
        # carries a tolerance when both runs kept the same mask trajectory —
        # a record without one is diagnostic, not a probe.  The lockstep
        # block-wise sub-probes under "encoder_blockwise" are always gated
        # (identical block inputs make them machine-independent).  The
        # "compiled" sub-probe carries the compiled backend's own tolerance
        # tier (compiled-vs-fused drift; absent on hosts without the built
        # extension, which --allow-missing / the embedded-probe skip covers).
        embedded = [
            (f"{name}.encoder", bench.get("encoder")),
            (f"{name}.compiled", bench.get("compiled")),
        ]
        blockwise = bench.get("encoder_blockwise")
        if isinstance(blockwise, dict):
            embedded += [
                (f"{name}.encoder_blockwise.{key}", blockwise.get(key))
                for key in ("fp32", "int12")
            ]
        for probe_name, sub in embedded:
            if (
                isinstance(sub, dict)
                and "max_abs_diff" in sub
                and sub.get("equivalence_tol") is not None
            ):
                probes.append(
                    {
                        "probe": probe_name,
                        "max_abs_diff": sub["max_abs_diff"],
                        "tolerance": sub["equivalence_tol"],
                    }
                )
        tol = bench.get("equivalence_tol")
        if tol is None:
            continue
        if "max_abs_diff" in bench:
            probes.append(
                {"probe": name, "max_abs_diff": bench["max_abs_diff"], "tolerance": tol}
            )
        for result in bench.get("results", []):
            label = f"{name}[fwp_k={result['fwp_k']}"
            if "pap_threshold" in result:
                label += f", pap={result['pap_threshold']}"
            label += "]"
            probes.append(
                {"probe": label, "max_abs_diff": result["max_abs_diff"], "tolerance": tol}
            )
    return probes


def compare_records(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    allow_missing: bool = False,
) -> tuple[list[str], list[str]]:
    """Diff two benchmark records.

    Returns ``(failures, report_lines)``: human-readable failure messages
    (empty when the current record passes the gate) and a per-metric report
    table for the job log.
    """
    failures: list[str] = []
    lines: list[str] = []

    base_speedups = extract_speedups(baseline)
    curr_speedups = extract_speedups(current)
    lines.append(f"{'metric':<48} {'baseline':>9} {'current':>9} {'change':>8}  status")
    for name in sorted(base_speedups):
        base = base_speedups[name]
        if name not in curr_speedups:
            status = "MISSING" if not allow_missing else "missing (allowed)"
            lines.append(f"{name:<48} {base:>8.2f}x {'-':>9} {'-':>8}  {status}")
            if not allow_missing:
                failures.append(f"{name}: tracked by the baseline but absent from the current record")
            continue
        curr = curr_speedups[name]
        change = (curr - base) / base if base > 0 else 0.0
        regressed = curr < base * (1.0 - tolerance)
        status = "REGRESSION" if regressed else "ok"
        lines.append(f"{name:<48} {base:>8.2f}x {curr:>8.2f}x {change:>+7.1%}  {status}")
        if regressed:
            failures.append(
                f"{name}: speedup regressed {base:.2f}x -> {curr:.2f}x "
                f"({change:+.1%}, tolerance -{tolerance:.0%})"
            )
    for name in sorted(set(curr_speedups) - set(base_speedups)):
        lines.append(f"{name:<48} {'-':>9} {curr_speedups[name]:>8.2f}x {'-':>8}  new")

    base_serving = extract_serving_metrics(baseline)
    curr_serving = extract_serving_metrics(current)
    fence = (1.0 + tolerance) * LATENCY_FENCE_FACTOR
    for name in sorted(base_serving):
        direction, base = base_serving[name]
        if name not in curr_serving:
            status = "MISSING" if not allow_missing else "missing (allowed)"
            lines.append(f"{name:<48} {base:>9.2f} {'-':>9} {'-':>8}  {status}")
            if not allow_missing:
                failures.append(
                    f"{name}: tracked by the baseline but absent from the current record"
                )
            continue
        curr = curr_serving[name][1]
        change = (curr - base) / base if base > 0 else 0.0
        if direction == "lower":
            regressed = curr > base * fence
        else:
            regressed = curr < base / fence
        status = "REGRESSION" if regressed else "ok"
        lines.append(f"{name:<48} {base:>9.2f} {curr:>9.2f} {change:>+7.1%}  {status}")
        if regressed:
            worse = "rose" if direction == "lower" else "fell"
            failures.append(
                f"{name}: {worse} {base:.2f} -> {curr:.2f} ({change:+.1%}, "
                f"fence {fence:.1f}x)"
            )
    for name in sorted(set(curr_serving) - set(base_serving)):
        lines.append(f"{name:<48} {'-':>9} {curr_serving[name][1]:>9.2f} {'-':>8}  new")

    base_counters = extract_lifecycle_counters(baseline)
    curr_counters = extract_lifecycle_counters(current)
    for name in sorted(base_counters):
        base = base_counters[name]
        if name not in curr_counters:
            status = "MISSING" if not allow_missing else "missing (allowed)"
            lines.append(f"{name:<48} {base:>9.0f} {'-':>9} {'-':>8}  {status}")
            if not allow_missing:
                failures.append(
                    f"{name}: lifecycle counter tracked by the baseline but absent "
                    "from the current record (fault-model coverage lost)"
                )
            continue
        lines.append(
            f"{name:<48} {base:>9.0f} {curr_counters[name]:>9.0f} {'-':>8}  info"
        )
    for name in sorted(set(curr_counters) - set(base_counters)):
        lines.append(f"{name:<48} {'-':>9} {curr_counters[name]:>9.0f} {'-':>8}  new")

    for probe in extract_equivalence_probes(current):
        ok = probe["max_abs_diff"] <= probe["tolerance"]
        status = "ok" if ok else "DRIFT"
        lines.append(
            f"{probe['probe']:<48} {'tol':>9} {probe['max_abs_diff']:>9.1e} "
            f"{probe['tolerance']:>8.0e}  {status}"
        )
        if not ok:
            failures.append(
                f"{probe['probe']}: equivalence drift {probe['max_abs_diff']:.2e} "
                f"exceeds tolerance {probe['tolerance']:.0e}"
            )
    return failures, lines


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"benchmark record not found: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"benchmark record {path} is not valid JSON: {exc}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="baseline BENCH_*.json (previous main artifact or committed reference)")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly generated BENCH_*.json to gate")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative speedup-regression tolerance (default 0.2 = 20%%)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a baseline metric is absent from the current record")
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")

    baseline = _load(args.baseline)
    current = _load(args.current)
    failures, lines = compare_records(
        baseline, current, tolerance=args.tolerance, allow_missing=args.allow_missing
    )
    print(f"baseline: {args.baseline}")
    print(f"current:  {args.current}")
    for line in lines:
        print(f"  {line}")
    if failures:
        for failure in failures:
            print(f"BENCH REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("benchmark comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
