"""Benchmark of streaming video sessions: steady-state vs cold-start rate.

A low-motion synthetic video stream is encoded twice at paper scale, by two
:class:`~repro.engine.streaming.StreamingEncoderSession` instances over the
same encoder: a *cold* session with ``keyframe_interval=1`` (every frame is a
full forward) and a *warm* session with the interval beyond the stream length
(every frame after the first reuses cross-frame state).  Both sessions keep
their execution-plan arenas warm across frames, so the reported speedup
isolates *temporal reuse* — warm-started FWP masks, cross-frame frozen rows,
the exact static-frame fast path — from the PR 5 arena effects.

Gates follow the PR 4 trajectory-sensitivity discipline: warm frames prune
differently than cold ones *by design*, so the warm-vs-cold end-to-end diff
is reported as a diagnostic (with its pixels-kept context), while the gated
equivalence probe replays each warm frame's recorded per-block masks through
the dense and sparse execution paths in lockstep
(:func:`repro.eval.profiler.measure_streaming_blockwise_equivalence`).
"""

import numpy as np
from conftest import run_once

from repro.core.config import DEFAConfig
from repro.engine.streaming import StreamingConfig, StreamingEncoderSession
from repro.eval.profiler import measure_streaming_blockwise_equivalence
from repro.nn.encoder import DeformableEncoder
from repro.workloads.specs import get_workload
from repro.workloads.video import SyntheticVideoStream, VideoStreamSpec

STREAMING_TARGET_SPEEDUP = 1.3
"""Steady-state frames/sec must beat the cold-start per-frame rate by at
least this factor on the low-motion paper-scale stream (the acceptance
criterion).  Calibrated ~1.8x here: the default stream computes well under
half of the rows on a typical warm frame, so the fence carries real headroom
and catches structural regressions (warm frames silently recomputing
everything), not scheduler jitter.  Note the win shrinks at *smaller* scales:
the dilation radii are fixed in cells, so on coarse grids the dependency cone
of even a small dirty set covers most of the frame — which is why the gate
runs at paper scale."""

STREAMING_FP32_TOL = 1e-5
"""Lockstep dense/sparse drift bound for fp32 streaming replays (the PR 4
fp32 tier)."""

STREAMING_INT12_TOL = 2e-2
"""Lockstep drift bound for INT12 streaming replays — the encoder blockwise
tier (a few quantization steps compounded through the block's LayerNorm/FFN
stage)."""

STREAMING_NUM_LAYERS = 4
"""Encoder depth of the timing measurement: deep enough that three of the
four blocks run masked (mask evolution and cross-frame freezing both
exercised) while keeping the paper-scale cold baseline affordable."""


def streaming_video_spec(num_frames: int) -> VideoStreamSpec:
    """The benchmark's low-motion stream: default motion (~1/4 finest-level
    cell per frame) quantizes many frames to bit-identical and keeps warm
    frames' dirty sets near the object boundaries."""
    return VideoStreamSpec(num_frames=num_frames, seed=11)


def build_sessions(scale: str = "paper", num_frames: int = 8):
    """The cold/warm session pair and their shared stream at ``scale``."""
    workload = get_workload("deformable_detr", scale)
    model = workload.model
    encoder = DeformableEncoder(
        num_layers=STREAMING_NUM_LAYERS,
        d_model=model.d_model,
        num_heads=model.num_heads,
        num_levels=model.num_levels,
        num_points=model.num_points,
        ffn_dim=model.ffn_dim,
        activation=model.activation,
        rng=0,
    )
    config = DEFAConfig(fwp_k=1.0, enable_query_pruning=True)
    cold = StreamingEncoderSession(
        encoder, config, workload.spatial_shapes, StreamingConfig(keyframe_interval=1)
    )
    warm = StreamingEncoderSession(
        encoder,
        config,
        workload.spatial_shapes,
        StreamingConfig(keyframe_interval=num_frames + 1),
    )
    stream = SyntheticVideoStream(
        workload.spatial_shapes, model.d_model, streaming_video_spec(num_frames)
    )
    return cold, warm, stream


def run_streaming_benchmark(
    scale: str = "paper", num_frames: int = 8, repeats: int = 2
) -> dict:
    """Measure steady-state frames/sec against the cold-start rate.

    Frame 0 warms both sessions (and their arenas) untimed; frames 1..N-1
    are timed per frame, per session, ``repeats`` times (sessions reset and
    replay between repeats), and the per-frame cost is the best repeat's
    mean — frames legitimately differ in dirtiness, so the mean over the
    stream is the steady-state rate, while min-of-repeats drops scheduler
    noise.  Returns the machine-readable benchmark record.
    """
    import time

    cold, warm, stream = build_sessions(scale, num_frames)
    frames = [stream.frame(i) for i in range(num_frames)]

    cold_means = []
    warm_means = []
    diagnostics = []
    stats_snapshots = []
    for repeat in range(repeats):
        cold.reset()
        warm.reset()
        cold.process(frames[0], 0)
        warm.process(frames[0], 0)
        if repeat == 0:
            stats_snapshots.append(dict(warm.plan_stats()))
        cold_times = []
        warm_times = []
        for i in range(1, num_frames):
            start = time.perf_counter()
            cold_result = cold.process(frames[i], i)
            cold_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            warm_result = warm.process(frames[i], i)
            warm_times.append(time.perf_counter() - start)
            if repeat == 0:
                diagnostics.append(
                    {
                        "frame": i,
                        "kind": warm_result.kind,
                        "pixels_kept": warm_result.pixels_kept,
                        "warm_vs_cold_max_abs_diff": float(
                            np.max(np.abs(warm_result.memory - cold_result.memory))
                        ),
                    }
                )
        if repeat == 0:
            stats_snapshots.append(dict(warm.plan_stats()))
        cold_means.append(sum(cold_times) / len(cold_times))
        warm_means.append(sum(warm_times) / len(warm_times))

    cold_s = min(cold_means)
    warm_s = min(warm_means)
    speedup = cold_s / warm_s
    workload = get_workload("deformable_detr", scale)
    fp32 = measure_streaming_blockwise_equivalence(
        workload,
        config=DEFAConfig(fwp_k=1.0, quant_bits=None, enable_query_pruning=True),
        num_layers=3,
        num_frames=4,
        rng=0,
    )
    int12 = measure_streaming_blockwise_equivalence(
        workload, num_layers=3, num_frames=4, rng=0
    )
    return {
        "name": "streaming",
        "generated_by": "benchmarks/bench_streaming.py",
        "config": {
            "workload": workload.name,
            "num_layers": STREAMING_NUM_LAYERS,
            "num_frames": num_frames,
            "repeats": repeats,
            "motion": streaming_video_spec(num_frames).motion,
            "target_speedup": STREAMING_TARGET_SPEEDUP,
        },
        "speedup": speedup,
        "cold_frame_s": cold_s,
        "warm_frame_s": warm_s,
        "cold_fps": 1.0 / cold_s,
        "steady_state_fps": 1.0 / warm_s,
        "mean_pixels_kept": (
            sum(d["pixels_kept"] for d in diagnostics) / len(diagnostics)
        ),
        "frame_kinds": [d["kind"] for d in diagnostics],
        "warm_vs_cold": diagnostics,
        "plan_stats": {"after_first_frame": stats_snapshots[0], "final": stats_snapshots[1]},
        "encoder_blockwise": {
            "fp32": {"max_abs_diff": fp32, "equivalence_tol": STREAMING_FP32_TOL},
            "int12": {"max_abs_diff": int12, "equivalence_tol": STREAMING_INT12_TOL},
        },
    }


def check_streaming_record(record: dict) -> None:
    """The acceptance gates, shared by the benchmark test and run_all.py."""
    assert record["speedup"] >= STREAMING_TARGET_SPEEDUP, (
        f"steady-state speedup {record['speedup']:.2f}x below the "
        f"{STREAMING_TARGET_SPEEDUP}x fence"
    )
    for tier in ("fp32", "int12"):
        probe = record["encoder_blockwise"][tier]
        assert probe["max_abs_diff"] <= probe["equivalence_tol"], (
            f"{tier} lockstep streaming drift {probe['max_abs_diff']:.2e} over "
            f"{probe['equivalence_tol']:.0e}"
        )
    first, final = (
        record["plan_stats"]["after_first_frame"],
        record["plan_stats"]["final"],
    )
    # Warm arenas: a streaming session has one pyramid signature, so hits
    # climb frame over frame while the arena footprint plateaus.
    assert final["hits"] > first["hits"]
    assert final["bytes"] == first["bytes"]
    # Temporal reuse must actually fire: at least one frame after the first
    # must be warm or reused, and the stream must skip rows overall.
    assert any(kind in ("warm", "reused") for kind in record["frame_kinds"])
    assert record["mean_pixels_kept"] < 1.0


def _print_record(record: dict) -> None:
    print(
        f"streaming @ {record['config']['workload']}: "
        f"{record['steady_state_fps']:.2f} fps steady-state vs "
        f"{record['cold_fps']:.2f} fps cold ({record['speedup']:.2f}x), "
        f"mean pixels kept {record['mean_pixels_kept']:.1%}, "
        f"kinds {record['frame_kinds']}"
    )
    blockwise = record["encoder_blockwise"]
    print(
        f"  lockstep drift: fp32 {blockwise['fp32']['max_abs_diff']:.2e}, "
        f"int12 {blockwise['int12']['max_abs_diff']:.2e}; "
        f"plan hits {record['plan_stats']['after_first_frame']['hits']} -> "
        f"{record['plan_stats']['final']['hits']}, "
        f"bytes {record['plan_stats']['final']['bytes']}"
    )


def test_streaming_steady_state_speedup(benchmark):
    """The gated paper-scale streaming profile."""
    record = run_once(benchmark, run_streaming_benchmark, scale="paper")
    print()
    _print_record(record)
    check_streaming_record(record)
