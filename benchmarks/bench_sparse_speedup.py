"""Benchmark of the sparsity-aware execution path (sparse execution v2).

Sweeps FWP/PAP operating points on the paper-scale Deformable DETR workload
and times one DEFA attention block in ``dense`` mode (pruning simulated by
zeroing) against ``sparse`` mode (compacted kernels, compacted trace
construction and row-compacted query-side projections — query pruning is
enabled in both paths, so the comparison times two implementations of the
same semantics).  The measured speedup must grow with the reduction ratio
and reach the PR target of >= 1.8x at the ~50 % pixel-reduction operating
point, and the ``neighbors`` kernel section of the sparse path must scale
down with the point-keep ratio (the compacted trace only computes neighbour
math for surviving points).  The sweep is written to ``BENCH_sparse.json``
at the repo root so the perf trajectory is tracked PR-over-PR
(``benchmarks/run_all.py`` regenerates the same record and
``benchmarks/compare_bench.py`` gates it in CI).

Run directly (``python benchmarks/bench_sparse_speedup.py``) or through
pytest-benchmark like the other figure benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.eval.profiler import SparseSpeedupReport, sweep_sparse_speedup

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sparse.json"

#: Noise guard for the monotonicity assertion: wall-clock ratios jitter a few
#: percent even best-of-N, so each sweep step may regress by at most this
#: factor before the benchmark fails.
MONOTONIC_SLACK = 0.93

TARGET_SPEEDUP_AT_HALF_PIXELS = 1.8
"""PR acceptance floor at the operating point closest to 50 % pixel
reduction (raised from 1.5x by sparse execution v2; the reference machine
measures ~4x there)."""

#: The sparse `neighbors` section must cost at most ``keep_ratio *
#: NEIGHBORS_SCALING_SLACK`` of the dense one (checked where the point
#: reduction is large enough for the ratio to rise above timer noise).
NEIGHBORS_SCALING_SLACK = 2.5
NEIGHBORS_SCALING_MIN_REDUCTION = 0.3


def run_sweep(scale: str = "paper", repeats: int = 3) -> list[SparseSpeedupReport]:
    """Run the default FWP/PAP sweep (query pruning on) on the paper scale."""
    return sweep_sparse_speedup(scale=scale, repeats=repeats, rng_seed=0)


def sweep_record(
    reports: list[SparseSpeedupReport], repeats: int, query_pruning: bool = True
) -> dict:
    """The machine-readable benchmark record written to ``BENCH_sparse.json``.

    ``query_pruning`` must reflect the flag the sweep actually ran with so
    the record describes its own operating mode faithfully.
    """
    half = min(reports, key=lambda r: abs(r.pixel_reduction - 0.5))
    return {
        "name": "sparse_speedup",
        "generated_by": "benchmarks/bench_sparse_speedup.py",
        "config": {
            "workload": reports[0].workload if reports else None,
            "repeats": repeats,
            "query_pruning": query_pruning,
            "target_speedup_at_half_pixel_reduction": TARGET_SPEEDUP_AT_HALF_PIXELS,
        },
        "results": [r.as_dict() for r in reports],
        "summary": {
            "max_speedup": max(r.speedup for r in reports),
            "speedup_at_half_pixel_reduction": half.speedup,
            "pixel_reduction_at_half_point": half.pixel_reduction,
        },
    }


def write_bench_json(reports: list[SparseSpeedupReport], repeats: int, path: Path = BENCH_JSON) -> dict:
    record = sweep_record(reports, repeats)
    path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _print_sweep(reports: list[SparseSpeedupReport]) -> None:
    print()
    print(f"{'fwp_k':>6} {'pap_thr':>8} {'pix_red':>8} {'pt_red':>7} {'dense_ms':>9} {'sparse_ms':>10} {'speedup':>8} {'|diff|':>9}")
    for r in reports:
        print(
            f"{r.fwp_k:>6.2f} {r.pap_threshold:>8.3f} {r.pixel_reduction:>8.3f} "
            f"{r.point_reduction:>7.3f} {1e3 * r.dense_s:>9.1f} {1e3 * r.sparse_s:>10.1f} "
            f"{r.speedup:>8.2f} {r.max_abs_diff:>9.1e}"
        )


def check_sweep(reports: list[SparseSpeedupReport]) -> None:
    """Assert the PR acceptance criteria on a finished sweep."""
    # Speedup grows with the reduction ratio (modulo wall-clock noise).
    ordered = sorted(reports, key=lambda r: (r.pixel_reduction, r.point_reduction))
    for prev, curr in zip(ordered, ordered[1:]):
        assert curr.speedup >= prev.speedup * MONOTONIC_SLACK, (
            f"speedup not monotonic: {prev.speedup:.2f}x at "
            f"(pix={prev.pixel_reduction:.2f}, pt={prev.point_reduction:.2f}) -> "
            f"{curr.speedup:.2f}x at (pix={curr.pixel_reduction:.2f}, pt={curr.point_reduction:.2f})"
        )
    # >= 1.8x at the operating point closest to 50% pixel reduction.
    half = min(reports, key=lambda r: abs(r.pixel_reduction - 0.5))
    assert half.speedup >= TARGET_SPEEDUP_AT_HALF_PIXELS, (
        f"{half.speedup:.2f}x at {half.pixel_reduction:.0%} pixel reduction "
        f"(target {TARGET_SPEEDUP_AT_HALF_PIXELS}x)"
    )
    # The compacted trace construction must make the sparse `neighbors`
    # section track the point-keep ratio (checked where reduction is large
    # enough that the ratio is well above timer noise).
    for r in reports:
        if r.point_reduction < NEIGHBORS_SCALING_MIN_REDUCTION:
            continue
        dense_nb = r.dense_kernels.get("neighbors", 0.0)
        sparse_nb = r.sparse_kernels.get("neighbors", 0.0)
        if dense_nb <= 0:
            continue
        keep_ratio = 1.0 - r.point_reduction
        bound = keep_ratio * NEIGHBORS_SCALING_SLACK
        assert sparse_nb / dense_nb <= bound, (
            f"sparse neighbors section not scaling with keep ratio: "
            f"{1e3 * sparse_nb:.1f}ms vs dense {1e3 * dense_nb:.1f}ms "
            f"(ratio {sparse_nb / dense_nb:.2f} > bound {bound:.2f} at "
            f"point keep {keep_ratio:.2f})"
        )
    # The sparse path stays numerically equivalent to the dense-masked path.
    # INT12 configs may amplify float32 kernel rounding into a quantization
    # step in the output projection, hence the step-scale tolerance here; the
    # strict 1e-5 equivalence is asserted on unquantized configs in
    # tests/test_sparse_execution.py.
    for r in reports:
        assert r.max_abs_diff <= 5e-3, f"sparse/dense drift {r.max_abs_diff:.1e} at fwp_k={r.fwp_k}"


def _paper_scale_sweep():
    repeats = 3
    reports = run_sweep(scale="paper", repeats=repeats)
    write_bench_json(reports, repeats)
    return reports


def test_sparse_speedup(benchmark):
    from conftest import run_once

    reports = run_once(benchmark, _paper_scale_sweep)
    _print_sweep(reports)
    check_sweep(reports)


if __name__ == "__main__":
    reports = _paper_scale_sweep()
    _print_sweep(reports)
    check_sweep(reports)
    print(f"\nwrote {BENCH_JSON}")
