"""Benchmark of the sparsity-aware execution path (sparse execution v2).

Sweeps FWP/PAP operating points on the paper-scale Deformable DETR workload
and times one DEFA attention block in ``dense`` mode (pruning simulated by
zeroing) against ``sparse`` mode (compacted kernels, compacted trace
construction and row-compacted query-side projections — query pruning is
enabled in both paths, so the comparison times two implementations of the
same semantics).  The measured speedup must grow with the reduction ratio
and reach the PR target of >= 1.8x at the ~50 % pixel-reduction operating
point, and the ``neighbors`` kernel section of the sparse path must scale
down with the point-keep ratio (the compacted trace only computes neighbour
math for surviving points).  The block-sparse encoder (PR 4) adds an
end-to-end encoder measurement at the ~48 % pixel-reduction operating point:
the row-compacted FFN/LayerNorm stage must beat the PR 3 cost profile
(sparse attention, dense inter-block work) by >= 1.2x under identical
frozen-row semantics.  The fused-kernel backend (PR 5) adds a *backend*
dimension to the encoder measurement: the block-sparse encoder is timed on
the ``"reference"`` backend (the PR 4 execution) and on the ``"fused"``
backend (single-pass kernels + execution-plan buffer reuse), which must win
by >= 1.15x with bit-identical outputs.  The compiled C backend (PR 7), when
its extension is built, is timed as a third backend point and gated
bit-identical to the fused backend (its own ``COMPILED_EQUIVALENCE_TOL``
tier); on hosts without a C toolchain the compiled fields are simply absent
and ``compare_bench.py --allow-missing`` tolerates the gap.  The sweep is
written to ``BENCH_sparse.json``
at the repo root so the perf trajectory is tracked PR-over-PR
(``benchmarks/run_all.py`` regenerates the same record and
``benchmarks/compare_bench.py`` gates it in CI).

Run directly (``python benchmarks/bench_sparse_speedup.py``) or through
pytest-benchmark like the other figure benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import DEFAConfig
from repro.eval.profiler import (
    EncoderSparseSpeedupReport,
    SparseSpeedupReport,
    measure_encoder_blockwise_equivalence,
    measure_encoder_sparse_speedup,
    sweep_sparse_speedup,
)
from repro.kernels.compiled_backend import COMPILED_EQUIVALENCE_TOL
from repro.workloads.specs import get_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sparse.json"

#: Noise guard for the monotonicity assertion: wall-clock ratios jitter a few
#: percent even best-of-N, so each sweep step may regress by at most this
#: factor before the benchmark fails.
MONOTONIC_SLACK = 0.93

TARGET_SPEEDUP_AT_HALF_PIXELS = 1.8
"""PR acceptance floor at the operating point closest to 50 % pixel
reduction (raised from 1.5x by sparse execution v2; the reference machine
measures ~4x there)."""

#: The sparse `neighbors` section must cost at most ``keep_ratio *
#: NEIGHBORS_SCALING_SLACK`` of the dense one (checked where the point
#: reduction is large enough for the ratio to rise above timer noise).
NEIGHBORS_SCALING_SLACK = 2.5
NEIGHBORS_SCALING_MIN_REDUCTION = 0.3

ENCODER_FFN_TARGET = 1.2
"""PR 4 acceptance floor: the block-sparse encoder (row-compacted
FFN/LayerNorm stage) must beat the PR 3 cost profile (sparse attention,
dense inter-block stage) by at least this factor end-to-end at the ~48 %
pixel-reduction operating point."""

ENCODER_FUSED_TARGET = 1.15
"""PR 5 acceptance floor: the fused kernel backend + execution-plan arenas
must beat the PR 4 block-sparse path (reference backend, per-block
allocation) by at least this factor end-to-end at the same operating point,
with bit-identical outputs (``fused_max_abs_diff == 0``)."""

ENCODER_NUM_LAYERS = 6
"""Encoder depth of the end-to-end measurement — the paper's encoder depth.
The first block never receives a mask (it always runs dense), so 5 of the 6
blocks execute masked; the measured ``ffn_speedup`` is still *diluted* by
the unmasked first block, so the asymptotic per-masked-block win is larger
than the reported number."""

ENCODER_EQUIV_NUM_LAYERS = 3
"""Depth of the lockstep block-wise equivalence probe (see
:func:`repro.eval.profiler.measure_encoder_blockwise_equivalence`): two
masked blocks exercise mask evolution without paying for the full depth."""

ENCODER_INT12_TOL = 2e-2
"""Block-wise dense/sparse drift bound for INT12 encoder runs: each block
may differ by a few quantization steps (the single-block 5e-3 bound) and the
LayerNorm/FFN stage inside the block propagates them, so the bound is a few
steps wider.  This gates the *lockstep* probe and, when the end-to-end runs
kept identical mask trajectories, the end-to-end record too; a diverged
trajectory makes the end-to-end diff meaningless (whole rows legitimately
differ once a threshold decision flips) and is reported, not gated."""


def run_sweep(scale: str = "paper", repeats: int = 3) -> list[SparseSpeedupReport]:
    """Run the default FWP/PAP sweep (query pruning on) on the paper scale."""
    return sweep_sparse_speedup(scale=scale, repeats=repeats, rng_seed=0)


def run_encoder_benchmark(
    scale: str = "paper", repeats: int = 5
) -> EncoderSparseSpeedupReport:
    """End-to-end block-sparse encoder measurement at the ~48 % operating point.

    ``fwp_k = 1.0`` lands the FWP mask at roughly half pixel reduction on the
    paper-scale workload, which is the operating point the PR acceptance
    criterion names.  The default best-of-5 is deliberately higher than the
    sweep's best-of-3: the :data:`ENCODER_FFN_TARGET` gate carries only a few
    percent of headroom over the reference measurement (1.25x vs 1.2), so the
    min-of-N ratio needs the extra samples to keep scheduler noise out of it.
    """
    return measure_encoder_sparse_speedup(
        get_workload("deformable_detr", scale),
        num_layers=ENCODER_NUM_LAYERS,
        repeats=repeats,
        rng=0,
    )


def run_encoder_blockwise_probe(scale: str = "paper") -> dict:
    """The machine-independent encoder equivalence probes (fp32 + INT12).

    Lockstep block-wise comparison: both paths see identical block inputs
    and incoming masks at every block, so threshold decisions cannot flip
    and the measured drift is pure execution-path drift.
    """
    workload = get_workload("deformable_detr", scale)
    fp32 = measure_encoder_blockwise_equivalence(
        workload,
        config=DEFAConfig(fwp_k=1.0, quant_bits=None, enable_query_pruning=True),
        num_layers=ENCODER_EQUIV_NUM_LAYERS,
        rng=0,
    )
    int12 = measure_encoder_blockwise_equivalence(
        workload, num_layers=ENCODER_EQUIV_NUM_LAYERS, rng=0
    )
    return {
        "num_layers": ENCODER_EQUIV_NUM_LAYERS,
        "fp32": {"max_abs_diff": fp32, "equivalence_tol": 1e-5},
        "int12": {"max_abs_diff": int12, "equivalence_tol": ENCODER_INT12_TOL},
    }


def sweep_record(
    reports: list[SparseSpeedupReport],
    repeats: int,
    query_pruning: bool = True,
    encoder_report: EncoderSparseSpeedupReport | None = None,
    blockwise: dict | None = None,
) -> dict:
    """The machine-readable benchmark record written to ``BENCH_sparse.json``.

    ``query_pruning`` must reflect the flag the sweep actually ran with so
    the record describes its own operating mode faithfully.  When the
    end-to-end encoder measurement ran, its record is embedded under
    ``"encoder"`` and its two speedups join the tracked summary aggregates;
    the record only carries an ``equivalence_tol`` (i.e. only becomes a
    gated probe) when both runs kept the same mask trajectory — a diverged
    trajectory makes the end-to-end diff meaningless.  The lockstep
    block-wise probes (``blockwise``, machine-independent) are embedded
    under ``"encoder_blockwise"`` and always gated.
    """
    half = min(reports, key=lambda r: abs(r.pixel_reduction - 0.5))
    record = {
        "name": "sparse_speedup",
        "generated_by": "benchmarks/bench_sparse_speedup.py",
        "config": {
            "workload": reports[0].workload if reports else None,
            "repeats": repeats,
            "query_pruning": query_pruning,
            "target_speedup_at_half_pixel_reduction": TARGET_SPEEDUP_AT_HALF_PIXELS,
            "encoder_ffn_target": ENCODER_FFN_TARGET,
            "encoder_fused_target": ENCODER_FUSED_TARGET,
        },
        "results": [r.as_dict() for r in reports],
        "summary": {
            "max_speedup": max(r.speedup for r in reports),
            "speedup_at_half_pixel_reduction": half.speedup,
            "pixel_reduction_at_half_point": half.pixel_reduction,
        },
    }
    if encoder_report is not None:
        record["encoder"] = encoder_report.as_dict()
        if encoder_report.mask_trajectory_matched:
            record["encoder"]["equivalence_tol"] = ENCODER_INT12_TOL
        record["summary"]["encoder_speedup"] = encoder_report.speedup
        record["summary"]["encoder_ffn_speedup"] = encoder_report.ffn_speedup
        record["summary"]["encoder_fused_speedup"] = encoder_report.fused_speedup
        if encoder_report.sparse_compiled_s is not None:
            # The compiled backend ran: track its speedup and gate its drift
            # against the fused backend under the compiled tolerance tier.
            record["summary"]["encoder_compiled_speedup"] = (
                encoder_report.compiled_speedup
            )
            record["compiled"] = {
                "max_abs_diff": encoder_report.compiled_max_abs_diff,
                "equivalence_tol": COMPILED_EQUIVALENCE_TOL,
            }
    if blockwise is not None:
        record["encoder_blockwise"] = blockwise
    return record


def write_bench_json(
    reports: list[SparseSpeedupReport],
    repeats: int,
    path: Path = BENCH_JSON,
    encoder_report: EncoderSparseSpeedupReport | None = None,
    blockwise: dict | None = None,
) -> dict:
    record = sweep_record(
        reports, repeats, encoder_report=encoder_report, blockwise=blockwise
    )
    path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _print_sweep(
    reports: list[SparseSpeedupReport],
    encoder_report: EncoderSparseSpeedupReport | None = None,
) -> None:
    print()
    print(f"{'fwp_k':>6} {'pap_thr':>8} {'pix_red':>8} {'pt_red':>7} {'dense_ms':>9} {'sparse_ms':>10} {'speedup':>8} {'|diff|':>9}")
    for r in reports:
        print(
            f"{r.fwp_k:>6.2f} {r.pap_threshold:>8.3f} {r.pixel_reduction:>8.3f} "
            f"{r.point_reduction:>7.3f} {1e3 * r.dense_s:>9.1f} {1e3 * r.sparse_s:>10.1f} "
            f"{r.speedup:>8.2f} {r.max_abs_diff:>9.1e}"
        )
    if encoder_report is not None:
        e = encoder_report
        compiled = ""
        if e.sparse_compiled_s is not None:
            compiled = (
                f", compiled {1e3 * e.sparse_compiled_s:.1f}ms "
                f"({e.compiled_speedup:.2f}x over fused, "
                f"|diff| {e.compiled_max_abs_diff:.1e})"
            )
        print(
            f"\nencoder ({e.num_layers} layers, pix_red {e.pixel_reduction:.3f}): "
            f"dense {1e3 * e.dense_s:.1f}ms, sparse+dense-ffn "
            f"{1e3 * e.sparse_dense_ffn_s:.1f}ms, block-sparse {1e3 * e.sparse_s:.1f}ms, "
            f"fused {1e3 * e.sparse_fused_s:.1f}ms "
            f"=> {e.speedup:.2f}x total, {e.ffn_speedup:.2f}x over the PR 3 profile, "
            f"{e.fused_speedup:.2f}x over the PR 4 path "
            f"(fused |diff| {e.fused_max_abs_diff:.1e}){compiled}"
        )


def check_encoder_report(
    encoder_report: EncoderSparseSpeedupReport, blockwise: dict | None = None
) -> None:
    """Assert the PR 4 acceptance criteria on the end-to-end encoder record."""
    assert encoder_report.ffn_speedup >= ENCODER_FFN_TARGET, (
        f"block-sparse encoder only {encoder_report.ffn_speedup:.2f}x over the "
        f"PR 3 profile at {encoder_report.pixel_reduction:.0%} pixel reduction "
        f"(target {ENCODER_FFN_TARGET}x)"
    )
    assert encoder_report.speedup >= encoder_report.ffn_speedup, (
        "the full dense path cannot be faster than the PR 3 sparse profile"
    )
    assert encoder_report.fused_speedup >= ENCODER_FUSED_TARGET, (
        f"fused backend only {encoder_report.fused_speedup:.2f}x over the PR 4 "
        f"block-sparse path (target {ENCODER_FUSED_TARGET}x)"
    )
    # The fused backend performs the same float operations in the same order
    # as the reference backend — any deviation at all is an execution bug.
    assert encoder_report.fused_max_abs_diff == 0.0, (
        f"fused backend drifted from the reference backend by "
        f"{encoder_report.fused_max_abs_diff:.1e} (must be bit-identical)"
    )
    # The compiled C kernels replicate the fused backend's float op order
    # exactly (see repro/kernels/compiled_backend.py), so when the extension
    # is built the compiled run is held to its own zero-drift tier.
    if encoder_report.compiled_max_abs_diff is not None:
        assert encoder_report.compiled_max_abs_diff <= COMPILED_EQUIVALENCE_TOL, (
            f"compiled backend drifted from the fused backend by "
            f"{encoder_report.compiled_max_abs_diff:.1e} "
            f"(tolerance {COMPILED_EQUIVALENCE_TOL:.0e})"
        )
    # The end-to-end diff is only a path-drift measure while both runs prune
    # the same pixels; once a threshold decision flips the trajectories are
    # different algorithmic runs and only the lockstep probe gates drift.
    if encoder_report.mask_trajectory_matched:
        assert encoder_report.max_abs_diff <= ENCODER_INT12_TOL, (
            f"encoder dense/sparse drift {encoder_report.max_abs_diff:.1e}"
        )
    if blockwise is not None:
        for key in ("fp32", "int12"):
            probe = blockwise[key]
            assert probe["max_abs_diff"] <= probe["equivalence_tol"], (
                f"encoder blockwise {key} drift {probe['max_abs_diff']:.2e} "
                f"exceeds {probe['equivalence_tol']:.0e}"
            )


def check_sweep(reports: list[SparseSpeedupReport]) -> None:
    """Assert the PR acceptance criteria on a finished sweep."""
    # Speedup grows with the reduction ratio (modulo wall-clock noise).
    ordered = sorted(reports, key=lambda r: (r.pixel_reduction, r.point_reduction))
    for prev, curr in zip(ordered, ordered[1:]):
        assert curr.speedup >= prev.speedup * MONOTONIC_SLACK, (
            f"speedup not monotonic: {prev.speedup:.2f}x at "
            f"(pix={prev.pixel_reduction:.2f}, pt={prev.point_reduction:.2f}) -> "
            f"{curr.speedup:.2f}x at (pix={curr.pixel_reduction:.2f}, pt={curr.point_reduction:.2f})"
        )
    # >= 1.8x at the operating point closest to 50% pixel reduction.
    half = min(reports, key=lambda r: abs(r.pixel_reduction - 0.5))
    assert half.speedup >= TARGET_SPEEDUP_AT_HALF_PIXELS, (
        f"{half.speedup:.2f}x at {half.pixel_reduction:.0%} pixel reduction "
        f"(target {TARGET_SPEEDUP_AT_HALF_PIXELS}x)"
    )
    # The compacted trace construction must make the sparse `neighbors`
    # section track the point-keep ratio (checked where reduction is large
    # enough that the ratio is well above timer noise).
    for r in reports:
        if r.point_reduction < NEIGHBORS_SCALING_MIN_REDUCTION:
            continue
        dense_nb = r.dense_kernels.get("neighbors", 0.0)
        sparse_nb = r.sparse_kernels.get("neighbors", 0.0)
        if dense_nb <= 0:
            continue
        keep_ratio = 1.0 - r.point_reduction
        bound = keep_ratio * NEIGHBORS_SCALING_SLACK
        assert sparse_nb / dense_nb <= bound, (
            f"sparse neighbors section not scaling with keep ratio: "
            f"{1e3 * sparse_nb:.1f}ms vs dense {1e3 * dense_nb:.1f}ms "
            f"(ratio {sparse_nb / dense_nb:.2f} > bound {bound:.2f} at "
            f"point keep {keep_ratio:.2f})"
        )
    # The sparse path stays numerically equivalent to the dense-masked path.
    # INT12 configs may amplify float32 kernel rounding into a quantization
    # step in the output projection, hence the step-scale tolerance here; the
    # strict 1e-5 equivalence is asserted on unquantized configs in
    # tests/test_sparse_execution.py.
    for r in reports:
        assert r.max_abs_diff <= 5e-3, f"sparse/dense drift {r.max_abs_diff:.1e} at fwp_k={r.fwp_k}"


def _paper_scale_sweep():
    repeats = 3
    reports = run_sweep(scale="paper", repeats=repeats)
    encoder_report = run_encoder_benchmark(scale="paper")
    blockwise = run_encoder_blockwise_probe(scale="paper")
    write_bench_json(
        reports, repeats, encoder_report=encoder_report, blockwise=blockwise
    )
    return reports, encoder_report, blockwise


def test_sparse_speedup(benchmark):
    from conftest import run_once

    reports, encoder_report, blockwise = run_once(benchmark, _paper_scale_sweep)
    _print_sweep(reports, encoder_report)
    check_sweep(reports)
    check_encoder_report(encoder_report, blockwise)


if __name__ == "__main__":
    reports, encoder_report, blockwise = _paper_scale_sweep()
    _print_sweep(reports, encoder_report)
    check_sweep(reports)
    check_encoder_report(encoder_report, blockwise)
    print(f"\nwrote {BENCH_JSON}")
