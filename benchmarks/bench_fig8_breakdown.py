"""Benchmark regenerating Fig. 8: area and energy breakdown of the accelerator."""

from conftest import run_once

from repro.experiments import fig8_breakdown


def test_fig8_breakdown(benchmark):
    result = run_once(benchmark, fig8_breakdown.run)
    print()
    print(result.as_table())
    data = result.data
    assert 2.0 < data["total_area_mm2"] < 3.5  # paper: 2.63 mm^2
    assert data["area_fractions"]["sram"] > 0.5  # paper: 72 %
    assert data["energy_fractions"]["dram"] > 0.5  # paper: 93 % (DRAM dominates)
