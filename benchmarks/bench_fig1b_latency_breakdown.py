"""Benchmark regenerating Fig. 1(b): GPU latency breakdown of MSDeformAttn."""

from conftest import run_once

from repro.experiments import fig1b_latency_breakdown


def test_fig1b_latency_breakdown(benchmark):
    result = run_once(benchmark, fig1b_latency_breakdown.run, scale="paper")
    print()
    print(result.as_table())
    for row in result.rows:
        assert 50.0 < row[1] < 80.0  # MSGS + aggregation dominate (paper: 60-64 %)
