"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper.  The experiments are
deterministic and relatively slow (they run the NumPy encoder), so every
benchmark executes exactly one round via ``benchmark.pedantic`` and prints the
regenerated table (captured into ``bench_output.txt`` by the harness command).
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
