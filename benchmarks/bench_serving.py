"""Benchmark of the sharded serving engine under synthetic traffic.

Replays a deterministic bursty traffic stream — mixed pyramid shapes, mixed
request classes (fp32 and INT12 pruning configs) — through a
:class:`~repro.engine.serving.ServingEngine` and reports p50/p99 request
latency, throughput and scheduling overhead, plus the same profile per worker
count (0 = in-process, 1, 2).

The container is single-core, so the *gates* are scheduling correctness
(served outputs bit-equal to the serial per-image loop, including through a
forced worker kill and the degraded-mode fallback) and bounded overhead;
worker-count scaling is printed as informational only — extra worker
processes on one core add IPC and serialization cost without adding compute.
"""

from conftest import run_once

from repro.core.config import DEFAConfig
from repro.engine.faults import FaultPlan
from repro.engine.serving import ModelBankSpec, ServingConfig
from repro.engine.traffic import generate_traffic
from repro.eval.profiler import measure_serving_latency
from repro.utils.shapes import LevelShape

SERVING_EQUIVALENCE_TOL = 0.0
"""Served-vs-serial drift bound: the batched kernels are bit-equal to the
per-image loop for any batch composition (per-image auto-dispatch, per-image
quantization scales), so *no* scheduling decision — batch packing, worker
placement, degraded fallback — may change a served output.  Exact zero."""

SERVING_D_MODEL = 64
SERVING_MAX_BATCH_SIZE = 4
SERVING_RESTART_BACKOFF_S = 0.05

#: Weighted mixed-shape pyramid set of the synthetic traffic (two small
#: signatures so the scheduler constantly re-groups, plus a rarer third).
SERVING_SHAPE_MIX = (
    ((LevelShape(8, 12), LevelShape(4, 6)), 2.0),
    ((LevelShape(6, 8), LevelShape(3, 4)), 2.0),
    ((LevelShape(10, 14), LevelShape(5, 7)), 1.0),
)


def serving_bank_spec(backend: str | None = None) -> ModelBankSpec:
    """The two-class model bank every serving benchmark/probe serves with.

    ``fp32`` is the unquantized sparse pipeline, ``int12`` the quantized one
    with query pruning — together they cover both equivalence regimes of the
    acceptance criteria on one shared encoder.  ``backend`` pins the kernel
    backend of both classes (the spec travels to worker *processes*, whose
    default backend is their own, not the benchmark process's) — a worker
    asked for ``"compiled"`` on a host without the built extension falls
    back to ``"fused"`` via the registry, which ``worker_stats()`` reports.
    """
    return ModelBankSpec(
        num_layers=2,
        d_model=SERVING_D_MODEL,
        num_heads=4,
        num_levels=2,
        num_points=2,
        ffn_dim=128,
        rng_seed=0,
        classes=(
            ("fp32", DEFAConfig(quant_bits=None, kernel_backend=backend)),
            (
                "int12",
                DEFAConfig(
                    quant_bits=12, enable_query_pruning=True, kernel_backend=backend
                ),
            ),
        ),
    )


def serving_traffic(num_requests: int, seed: int = 7):
    """The deterministic bursty mixed-shape/mixed-class benchmark stream."""
    return generate_traffic(
        num_requests,
        mean_rate_rps=500.0,
        d_model=SERVING_D_MODEL,
        shape_mix=SERVING_SHAPE_MIX,
        class_mix=(("fp32", 1.0), ("int12", 1.0)),
        process="bursty",
        seed=seed,
    )


def serving_config(num_workers: int) -> ServingConfig:
    return ServingConfig(
        max_batch_size=SERVING_MAX_BATCH_SIZE,
        num_workers=num_workers,
        restart_backoff_s=SERVING_RESTART_BACKOFF_S,
    )


def serving_report(
    num_workers: int = 1,
    num_requests: int = 48,
    kill_worker_at: int | None = None,
    repeats: int = 2,
    backend: str | None = None,
):
    """One full serving profile (see ``measure_serving_latency``)."""
    spec = serving_bank_spec(backend=backend)
    events = serving_traffic(num_requests)
    return measure_serving_latency(
        spec.build,
        events,
        config=serving_config(num_workers),
        speed=0.0,  # open loop: saturates the queue, exercises max-batch flushes
        kill_worker_at=kill_worker_at,
        repeats=repeats,
    )


def serving_record(
    report, kill_worker_at: int | None, backend: str | None = None
) -> dict:
    """Machine-readable record of one serving profile (run_all.py shape)."""
    d = report.as_dict()
    return {
        "name": "serving",
        "config": {
            "num_requests": report.num_requests,
            "num_workers": report.num_workers,
            "max_batch_size": SERVING_MAX_BATCH_SIZE,
            "process": "bursty",
            "classes": ["fp32", "int12"],
            "kernel_backend": backend or "default",
            "kill_worker_at": kill_worker_at,
        },
        "p50_ms": d["p50_ms"],
        "p99_ms": d["p99_ms"],
        "throughput_rps": d["throughput_rps"],
        "overhead": d["overhead"],
        "mean_batch_size": d["mean_batch_size"],
        "worker_deaths": report.worker_deaths,
        "worker_restarts": report.worker_restarts,
        "primary_batches": report.primary_batches,
        "degraded_batches": report.degraded_batches,
        # Request-lifecycle counters (PR 10): recorded so compare_bench.py
        # fences them structurally — a record that silently stops carrying
        # them fails the regression gate.
        "num_shed": report.num_shed,
        "num_expired": report.num_expired,
        "num_retried": report.num_retried,
        "num_quarantined": report.num_quarantined,
        "watchdog_kills": report.watchdog_kills,
        "num_failed": report.num_failed,
        "timings_ms": {"serial": d["serial_ms"], "replay": d["elapsed_ms"]},
        "max_abs_diff": report.max_abs_diff,
        "equivalence_tol": SERVING_EQUIVALENCE_TOL,
    }


# --------------------------------------------------------------------------
# Fault-plan probe (PR 10): scripted crash + hang + raise in one replay

SERVING_FAULTS_BATCH_TIMEOUT_S = 0.75
"""Watchdog bound of the fault probe — generous against single-core
scheduling jitter, tiny against the scripted 30 s hang."""

SERVING_FAULTS_PLAN = (
    FaultPlan()
    # Incarnation 0 hard-crashes on its third batch (mid-stream).
    .with_crash(batch=2)
    # Its replacement hangs 30 s on its first batch: only the engine-side
    # watchdog can reclaim the slot.
    .with_hang(seconds=30.0, batch=0, incarnation=1)
    # The third incarnation raises a retryable fault once, then serves.
    .with_raise(batch=1, incarnation=2)
)
"""One replay through all three recoverable fault kinds, chained across
worker incarnations: crash -> watchdog-killed hang -> transient raise."""


def serving_faults_config() -> ServingConfig:
    return ServingConfig(
        max_batch_size=SERVING_MAX_BATCH_SIZE,
        num_workers=1,
        restart_backoff_s=0.02,  # short: the probe rides through two restarts
        batch_timeout_s=SERVING_FAULTS_BATCH_TIMEOUT_S,
        # Requests can be in flight for several chained faults here; the
        # probe asserts nothing was quarantined, so give headroom over the
        # scripted worst case (crash + watchdog kill + raise = 3 retries).
        max_retries=5,
    )


def serving_faults_report(num_requests: int = 48, repeats: int = 2, backend=None):
    """Replay the benchmark stream through ``SERVING_FAULTS_PLAN``."""
    return measure_serving_latency(
        serving_bank_spec(backend=backend),
        serving_traffic(num_requests),
        config=serving_faults_config(),
        speed=0.0,
        repeats=repeats,
        fault_plan=SERVING_FAULTS_PLAN,
    )


def serving_faults_record(report, backend: str | None = None) -> dict:
    """Machine-readable record of the fault probe (run_all.py shape)."""
    record = serving_record(report, kill_worker_at=None, backend=backend)
    record["name"] = "serving_faults"
    record["config"]["fault_plan"] = {
        "faults": [
            {
                "kind": f.kind,
                "batch": f.batch,
                "worker": f.worker,
                "incarnation": f.incarnation,
                "seconds": f.seconds,
            }
            for f in SERVING_FAULTS_PLAN.faults
        ],
        "batch_timeout_s": SERVING_FAULTS_BATCH_TIMEOUT_S,
    }
    del record["config"]["kill_worker_at"]
    return record


def _print_report(label: str, report) -> None:
    print(
        f"{label}: p50 {1e3 * report.p50_s:.1f} ms, p99 {1e3 * report.p99_s:.1f} ms, "
        f"throughput {report.throughput_rps:.1f} req/s, overhead {report.overhead:.2f}x, "
        f"batches {report.num_batches} (mean size {report.mean_batch_size:.2f}), "
        f"deaths {report.worker_deaths}, degraded batches {report.degraded_batches}, "
        f"max |diff| {report.max_abs_diff:.2e}"
    )


def test_serving_latency_under_fault(benchmark):
    """The gated profile: one worker, forced kill mid-stream.

    Served outputs must stay bit-equal to the serial per-image loop *through*
    the worker death and the degraded-mode fallback, and the kill must
    actually have been observed (otherwise the probe silently stops covering
    the fault path).
    """
    report = run_once(
        benchmark, serving_report, num_workers=1, num_requests=48, kill_worker_at=16
    )
    print()
    _print_report("1 worker + kill@16", report)
    assert report.max_abs_diff == SERVING_EQUIVALENCE_TOL
    assert report.worker_deaths >= 1
    # The kill strands >= 30 queued requests with no worker alive until the
    # restart backoff expires, so some batches must have served degraded.
    assert report.degraded_batches >= 1
    # Scheduling overhead on the single-core container: the worker path pays
    # IPC + pickling on top of the serial loop.  Calibrated ~2-3x here; the
    # fence catches structural regressions (e.g. a poll loop going quadratic),
    # not jitter.  This benchmark is deliberately not part of the CI tier-1
    # run.
    assert report.overhead <= 8.0


def test_serving_fault_plan_recovery(benchmark):
    """The chaos profile: crash, watchdog-killed hang and transient raise in
    one replay, every served output still bit-equal to the serial loop.

    This is the acceptance gate of the PR 10 fault model: the injected
    faults must actually have fired (two deaths, one of them the watchdog's
    kill), nothing may be quarantined or lost, and the engine must end the
    replay back in primary mode.
    """
    report = run_once(benchmark, serving_faults_report, num_requests=48)
    print()
    _print_report("crash+hang+raise plan", report)
    assert report.max_abs_diff == SERVING_EQUIVALENCE_TOL
    assert report.worker_deaths == 2  # scripted crash + watchdog kill
    assert report.watchdog_kills == 1
    assert report.num_retried >= 1  # the raise fault requeues its batch
    assert report.num_quarantined == 0
    assert report.num_failed == 0  # every request served despite the faults
    assert report.mode == "primary"


def test_serving_worker_sweep(benchmark):
    """Informational: the same stream at 0 / 1 / 2 workers.

    Single-core container — worker counts cannot speed anything up; the sweep
    documents the IPC cost of each configuration and re-gates bit-equality on
    every path (in-process engine included)."""

    def sweep():
        return [
            (n, serving_report(num_workers=n, num_requests=32, repeats=1))
            for n in (0, 1, 2)
        ]

    reports = run_once(benchmark, sweep)
    print()
    for num_workers, report in reports:
        _print_report(f"{num_workers} workers", report)
        assert report.max_abs_diff == SERVING_EQUIVALENCE_TOL
        assert report.worker_deaths == 0
