"""Benchmark of the batched multi-image execution engine.

Measures the wall-clock win of one batched encoder forward over the
equivalent loop of single-image forwards for an 8-image same-shape workload.
The win comes from amortizing per-call dispatch overhead across the batch, so
the workload is a compact encoder configuration (the many-small-images
serving regime); at paper-scale inputs, where per-image tensor work dominates,
batching approaches parity instead.
"""

from conftest import run_once

from repro.eval.profiler import measure_encoder_batched_speedup
from repro.nn.encoder import DeformableEncoder
from repro.utils.shapes import make_level_shapes


def _compact_engine_speedup():
    shapes = make_level_shapes(32, 48, (8, 16))  # 30 tokens per image
    encoder = DeformableEncoder(
        num_layers=2,
        d_model=64,
        num_heads=4,
        num_levels=len(shapes),
        num_points=2,
        ffn_dim=128,
        rng=0,
    )
    return measure_encoder_batched_speedup(
        encoder, shapes, batch_size=8, repeats=5, rng=1
    )


def test_batched_engine_speedup(benchmark):
    report = run_once(benchmark, _compact_engine_speedup)
    print()
    print(
        f"8-image same-shape workload ({report.num_tokens} tokens/image, "
        f"d_model={report.d_model}): serial {1e3 * report.serial_s:.2f} ms, "
        f"batched {1e3 * report.batched_s:.2f} ms, "
        f"speedup {report.speedup:.2f}x, max |diff| {report.max_abs_diff:.2e}"
    )
    # Acceptance criterion of the batched-engine PR, calibrated on the
    # single-core reference machine (measured ~4.4x there).  Wall-clock
    # ratios are hardware-dependent; this benchmark is deliberately not part
    # of the CI tier-1 run.
    assert report.speedup >= 3.0
    # And stay numerically equivalent to the single-image loop.
    assert report.max_abs_diff <= 1e-5
