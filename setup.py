"""Setuptools entry point, and the build of the compiled kernel library.

``python setup.py build_ext --inplace`` compiles the C hot-path kernels
(``src/repro/kernels/_c/defa_kernels.c``) into a shared library next to
``repro/kernels/``, which :mod:`repro.kernels.compiled_backend` loads via
ctypes and exposes as the ``"compiled"`` backend.  The extension is
**optional**: when no C toolchain exists the build degrades to a warning,
the library is simply absent, ``COMPILED_AVAILABLE`` stays ``False`` and the
backend registry falls back to ``"fused"`` — nothing in the repo requires
the compiled path to run.

The compile flags are part of the numerics contract: the compiled backend is
gated bit-identical to ``"fused"`` (see benchmarks/baselines/README.md), and
a fused multiply-add would change the rounding of the combine loop, so FP
contraction is explicitly disabled.
"""

import sys

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext

if sys.platform == "win32":  # pragma: no cover - no Windows CI leg
    EXTRA_COMPILE_ARGS = ["/O2", "/fp:strict"]
else:
    EXTRA_COMPILE_ARGS = ["-O3", "-march=native", "-ffp-contract=off", "-fno-math-errno"]

DEFA_KERNELS = Extension(
    "repro.kernels._defa_kernels",
    sources=["src/repro/kernels/_c/defa_kernels.c"],
    extra_compile_args=EXTRA_COMPILE_ARGS,
    # Missing toolchain => warning, not error (setuptools honours this flag
    # in build_ext.run/build_extension).
    optional=True,
)


class OptionalBuildExt(build_ext):
    """``build_ext`` that degrades to a warning when no toolchain exists.

    ``Extension.optional`` already covers per-extension compile failures;
    this subclass additionally catches the errors raised *before* any
    extension is attempted (e.g. no compiler binary at all on a minimal
    container), so ``pip install .`` and ``setup.py build_ext`` never fail
    because of the optional kernels.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # noqa: BLE001 - any toolchain failure is non-fatal
            self.warn(
                f"building the optional compiled kernels failed ({exc}); "
                "the 'compiled' backend will fall back to 'fused'"
            )


setup(
    # The src layout must be explicit here (there is no pyproject.toml) so
    # `build_ext --inplace` drops the library next to repro/kernels/.
    package_dir={"": "src"},
    packages=find_packages("src"),
    # The committed reference dispatch profile must travel with the wheel:
    # it is the bit-deterministic default every host falls back to when no
    # calibrated profile is installed (see repro/kernels/calibration.py).
    package_data={"repro.kernels": ["profiles/*.json"]},
    ext_modules=[DEFA_KERNELS],
    cmdclass={"build_ext": OptionalBuildExt},
)
