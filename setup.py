"""Setuptools entry point.

The pyproject.toml carries all metadata; this shim exists so that editable
installs work on minimal offline environments (old setuptools without the
``wheel`` package, where PEP 660 editable wheels are unavailable).
"""

from setuptools import setup

setup()
